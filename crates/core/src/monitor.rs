//! Theorem-envelope monitors: online checks that a finished run stayed
//! inside the paper's guarantees.
//!
//! The theorems bound *expected* quantities with unspecified constants,
//! so the monitors check against calibrated envelopes — the theorem's
//! growth rate times a safety constant (see [`MonitorConfig`]) — and
//! flag runs that stray outside them. A violation event is a smoke
//! alarm, not a proof of a bug: it says "this run's behaviour is
//! inconsistent with the analysis at the configured constant", which in
//! a deterministic, seeded pipeline almost always means a regression.
//!
//! Four checks, gated by what the policy actually promises:
//!
//! * **Block boundaries** (Algorithm 1 only): the block schedule of
//!   Theorem 1 commits to `|B_{i,k}| = max{⌈d_{i,k}⌉, 1}` slots per
//!   block, so a model download *inside* a block is a contract breach.
//! * **Theorem 1 envelope** (Algorithm 1 only): per-edge P1 regret plus
//!   realized switching cost must grow like
//!   `O((u_i N)^{2/3} T^{1/3})`. Skipped under quality drift — the
//!   theorem assumes a fixed loss distribution.
//! * **Theorem 2 fit envelope** (Algorithm 2 only): the terminal
//!   constraint fit `‖[Σ_t g^t]⁺‖` must grow like `O(T^{2/3})`.
//! * **Dual sanity** (Algorithm 2 only): the dual variable must stay
//!   nonnegative, finite, and within the travel budget its tuned step
//!   size permits (`γ₁ Σ_t [g^t]⁺`), and executed trades must respect
//!   the per-slot bounds.
//!
//! Violations surface as `"envelope"` events (distinct from the
//! simulator's `"violation"` settlement events, which are a *normal*
//! outcome for constraint-blind baselines) plus an
//! `envelope.violations` counter and `envelope.*` gauges, all inside
//! the run's deterministic telemetry [`Recorder`].
//!
//! ## Fault-injected runs
//!
//! Under an active fault schedule (`--faults`, see `cne_faults`) the
//! theorems' premises no longer hold — outages suppress whole slots,
//! failed downloads delay switches past block boundaries, market halts
//! block the dual controller's trades — so envelope breaches are
//! *expected* and would otherwise read as spurious regressions. The
//! monitors therefore annotate instead of alarm: a finding attributable
//! to injected faults is still emitted as an [`EVENT_KIND`] event, but
//! carries an `("excused", true)` field and does **not** count toward
//! `envelope.violations` (which is what `report --strict` gates on).
//! The dual-sanity and trade-bounds checks stay hard under faults:
//! rectified ascent and market clamping must hold no matter what the
//! schedule does.

use cne_bandit::Schedule;
use cne_edgesim::{Environment, RunRecord, SlotRecord};
use cne_util::telemetry::{Event, Recorder, Value};

use crate::combos::{Combo, SelectorKind, TraderKind};
use crate::problem::LossNormalizer;
use crate::regret;
use crate::runner::PolicySpec;

/// Event kind used for every monitor finding.
pub const EVENT_KIND: &str = "envelope";

/// Safety constants multiplying the theorems' growth rates.
///
/// The theorems hide constants (and hold in expectation), so the
/// envelopes need headroom: large enough that nominal seeded runs never
/// trip them, small enough that a mis-tuned learning rate or a broken
/// schedule does. The defaults are calibrated against the fast-test
/// and `--quick` configurations (see `tests/monitors.rs`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorConfig {
    /// Multiplies the Theorem 1 rate `scale · ((u_i N)^{2/3} T^{1/3} +
    /// u_i + 1)` (weighted cost units).
    pub thm1_constant: f64,
    /// Multiplies the Theorem 2 fit rate `2 (R/T) · T^{2/3}`
    /// (allowances).
    pub thm2_constant: f64,
    /// The dual variable may reach this multiple of its dual-ascent
    /// travel budget `γ₁ Σ_t [g^t]⁺` before the monitor flags it.
    pub lambda_drive_multiple: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            thm1_constant: 12.0,
            thm2_constant: 12.0,
            // The rectified ascent `λ ← [λ + γ₁ g]⁺` can never lift λ
            // above `γ₁ Σ_t [g^t]⁺` exactly, so 1.5 is pure float
            // headroom — while a step size inflated by a factor k
            // overshoots the nominal budget by up to that same k.
            lambda_drive_multiple: 1.5,
        }
    }
}

/// What the monitors concluded about one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MonitorSummary {
    /// Total envelope violations found (0 for a nominal run).
    pub violations: u64,
    /// `(observed, bound)` for the Theorem 1 regret envelope, summed
    /// over edges. `None` when the check did not apply.
    pub thm1: Option<(f64, f64)>,
    /// `(observed, bound)` for the Theorem 2 fit envelope. `None` when
    /// the check did not apply.
    pub thm2_fit: Option<(f64, f64)>,
}

/// Runs every monitor that applies to `spec` and records findings into
/// `rec`.
///
/// Emits one [`EVENT_KIND`] event per violation, bumps the
/// `envelope.violations` counter, and records `envelope.thm1_*` /
/// `envelope.fit_*` gauges whenever the corresponding envelope was
/// evaluated. The offline benchmark promises nothing and is never
/// checked.
pub fn check_run(
    env: &Environment<'_>,
    record: &RunRecord,
    spec: &PolicySpec,
    cfg: &MonitorConfig,
    rec: &mut Recorder,
) -> MonitorSummary {
    let mut summary = MonitorSummary::default();
    let PolicySpec::Combo(combo) = spec else {
        return summary;
    };
    // An active fault schedule voids the envelopes' premises: breaches
    // are annotated as excused instead of counted (see module docs).
    let excused = rec.events().iter().any(|e| e.kind == "fault");

    if combo.selector == SelectorKind::BlockTsallis {
        summary.violations += check_block_boundaries(env, rec);
        // Theorem 1 assumes a stationary loss distribution; a
        // mid-horizon quality drift voids the envelope by design.
        if env.config().quality_drift_at.is_none() {
            let (observed, bound, violations) = check_thm1_envelope(env, record, cfg, excused, rec);
            summary.thm1 = Some((observed, bound));
            summary.violations += violations;
        }
    }

    if combo.trader == TraderKind::PrimalDual {
        let (observed, bound, violations) = check_thm2_fit(env, record, cfg, excused, rec);
        summary.thm2_fit = Some((observed, bound));
        summary.violations += violations;
        summary.violations += check_dual_sanity(env, record, cfg, rec);
        summary.violations += check_trade_bounds(env, record, rec);
    }

    rec.incr("envelope.violations", summary.violations);
    summary
}

/// The per-edge Theorem 1 block schedules exactly as [`Combo::build`]
/// constructs them.
///
/// [`Combo::build`]: crate::combos::Combo::build
#[must_use]
pub fn theorem1_schedules(env: &Environment<'_>) -> Vec<Schedule> {
    let cfg = env.config();
    let normalizer = LossNormalizer::new(cfg.weights);
    (0..env.num_edges())
        .map(|i| {
            let u = normalizer.switch_cost(env.download_delay_ms(i), cfg.switch_weight);
            Schedule::theorem1(u, env.num_models(), env.horizon())
        })
        .collect()
}

/// Flags every model download that did not land on a block boundary of
/// the edge's Theorem 1 schedule. Returns the number of violations.
///
/// A switch event carrying a `retries` field was *delayed by injected
/// download failures* (see `cne_faults`): the selector committed to it
/// at a block boundary, but the fetch only completed `retries` slots
/// later. Such a switch is annotated with `("excused", true)` instead
/// of counted — the schedule contract was honoured by the algorithm,
/// not broken by it.
///
/// Reads the run's `"switch"` events out of `rec`, so it must run after
/// the traced simulation that produced them.
pub fn check_block_boundaries(env: &Environment<'_>, rec: &mut Recorder) -> u64 {
    let schedules = theorem1_schedules(env);
    let mut offenders: Vec<(u64, u64, u64, bool)> = Vec::new();
    for event in rec.events() {
        if event.kind != "switch" {
            continue;
        }
        let Some(t) = event.slot else { continue };
        let edge = event.fields.iter().find_map(|(name, value)| {
            if name == "edge" {
                if let Value::UInt(i) = value {
                    return Some(*i);
                }
            }
            None
        });
        let Some(edge) = edge else { continue };
        let Some(schedule) = schedules.get(edge as usize) else {
            continue;
        };
        let delayed_by_fault = event.fields.iter().any(|(name, _)| name == "retries");
        if !schedule.is_block_start(t as usize) {
            offenders.push((
                t,
                edge,
                schedule.block_of(t as usize) as u64,
                delayed_by_fault,
            ));
        }
    }
    let mut violations = 0u64;
    for &(t, edge, block, excused) in &offenders {
        if !excused {
            violations += 1;
        }
        rec.event(
            Some(t),
            EVENT_KIND,
            &[
                ("monitor", "block_boundary".into()),
                ("edge", edge.into()),
                ("block", block.into()),
                ("excused", excused.into()),
            ],
        );
    }
    violations
}

/// Checks each edge's P1 regret + switching cost against the Theorem 1
/// envelope `c · scale · ((u_i N)^{2/3} T^{1/3} + u_i + 1)` (weighted
/// cost units). Returns `(Σ observed, Σ bound, violations)`.
///
/// With `excused` set (an active fault schedule), breaches are emitted
/// as annotations with `("excused", true)` and not counted: injected
/// outages and lost feedback void the theorem's premises.
pub fn check_thm1_envelope(
    env: &Environment<'_>,
    record: &RunRecord,
    cfg: &MonitorConfig,
    excused: bool,
    rec: &mut Recorder,
) -> (f64, f64, u64) {
    let sim = env.config();
    let normalizer = LossNormalizer::new(sim.weights);
    let per_edge = regret::p1_regret_per_edge(env, record);
    let n = env.num_models() as f64;
    let t_third = (env.horizon() as f64).cbrt();

    let mut total_observed = 0.0;
    let mut total_bound = 0.0;
    let mut violations = 0u64;
    for (i, (edge, regret_i)) in record.edges.iter().zip(&per_edge).enumerate() {
        let u = normalizer.switch_cost(env.download_delay_ms(i), sim.switch_weight);
        let switching = edge.switches as f64
            * env.download_delay_ms(i)
            * sim.weights.switch_per_ms
            * sim.switch_weight;
        let observed = regret_i + switching;
        // `+ u_i + 1` keeps the envelope meaningful at tiny horizons,
        // where the mandatory first download already costs `u_i`.
        let bound =
            cfg.thm1_constant * normalizer.scale() * ((u * n).powf(2.0 / 3.0) * t_third + u + 1.0);
        total_observed += observed;
        total_bound += bound;
        if observed > bound {
            if !excused {
                violations += 1;
            }
            rec.event(
                None,
                EVENT_KIND,
                &[
                    ("monitor", "thm1_regret".into()),
                    ("edge", i.into()),
                    ("observed", observed.into()),
                    ("bound", bound.into()),
                    ("excused", excused.into()),
                ],
            );
        }
    }
    rec.gauge("envelope.thm1_observed", total_observed);
    rec.gauge("envelope.thm1_bound", total_bound);
    (total_observed, total_bound, violations)
}

/// Checks the terminal constraint fit against the Theorem 2 envelope
/// `c · 2 (R/T) · T^{2/3}` (allowances). Returns
/// `(observed, bound, violations)`.
///
/// With `excused` set (an active fault schedule), a breach is emitted
/// as an annotation with `("excused", true)` and not counted: market
/// halts block the dual controller's trades through no fault of its
/// own.
pub fn check_thm2_fit(
    env: &Environment<'_>,
    record: &RunRecord,
    cfg: &MonitorConfig,
    excused: bool,
    rec: &mut Recorder,
) -> (f64, f64, u64) {
    let observed = regret::fit(record);
    let horizon = env.horizon() as f64;
    // `2 R/T` is the trade scale Algorithm 2 is tuned with (see
    // `Combo::build`), which makes the envelope follow the cap.
    let bound = cfg.thm2_constant * 2.0 * env.config().cap_share() * horizon.powf(2.0 / 3.0);
    rec.gauge("envelope.fit_observed", observed);
    rec.gauge("envelope.fit_bound", bound);
    let breached = observed > bound;
    if breached {
        rec.event(
            None,
            EVENT_KIND,
            &[
                ("monitor", "thm2_fit".into()),
                ("observed", observed.into()),
                ("bound", bound.into()),
                ("excused", excused.into()),
            ],
        );
    }
    let violations = u64::from(breached && !excused);
    (observed, bound, violations)
}

/// Scans the run's `"lambda"` trajectory events for dual-variable
/// breaches: negative or non-finite values (the dual update projects
/// onto `λ ≥ 0`), or values beyond the travel budget the Theorem 2
/// step size permits. The rectified ascent `λ ← [λ + γ₁ g^t]⁺` can
/// never lift the dual above `γ₁ Σ_t [g^t]⁺` (every slot adds at most
/// `γ₁ [g^t]⁺`), so a trajectory that exceeds that budget — times
/// [`MonitorConfig::lambda_drive_multiple`] — was not produced by the
/// tuned update (e.g. an inflated step size or a broken projection).
/// Returns the number of violations.
pub fn check_dual_sanity(
    env: &Environment<'_>,
    record: &RunRecord,
    cfg: &MonitorConfig,
    rec: &mut Recorder,
) -> u64 {
    let gamma1 = crate::combos::theorem2_tuning(env).gamma1;
    let cap_share = env.config().cap_share();
    let drive: f64 = record
        .slots
        .iter()
        .map(|s| (s.emissions - cap_share - s.bought + s.sold).max(0.0))
        .sum();
    let ceiling = cfg.lambda_drive_multiple * gamma1 * drive;
    let mut offenders: Vec<(Option<u64>, f64)> = Vec::new();
    for event in rec.events() {
        if event.kind != "lambda" {
            continue;
        }
        let value = event.fields.iter().find_map(|(name, value)| {
            if name == "value" {
                if let Value::Float(v) = value {
                    return Some(*v);
                }
            }
            None
        });
        let Some(lambda) = value else { continue };
        if lambda < -1e-9 || lambda > ceiling || !lambda.is_finite() {
            offenders.push((event.slot, lambda));
        }
    }
    for &(slot, lambda) in &offenders {
        rec.event(
            slot,
            EVENT_KIND,
            &[
                ("monitor", "dual_sanity".into()),
                ("lambda", lambda.into()),
                ("ceiling", ceiling.into()),
            ],
        );
    }
    offenders.len() as u64
}

/// Verifies that every executed trade respected the per-slot bounds the
/// market is supposed to clamp to. Returns the number of violations.
pub fn check_trade_bounds(env: &Environment<'_>, record: &RunRecord, rec: &mut Recorder) -> u64 {
    let bounds = env.config().bounds;
    let max_buy = bounds.max_buy.get();
    let max_sell = bounds.max_sell.get();
    let eps = 1e-9;
    let mut violations = 0u64;
    for slot in &record.slots {
        if slot.bought > max_buy + eps || slot.sold > max_sell + eps {
            violations += 1;
            rec.event(
                Some(slot.t as u64),
                EVENT_KIND,
                &[
                    ("monitor", "trade_bounds".into()),
                    ("bought", slot.bought.into()),
                    ("sold", slot.sold.into()),
                    ("max_buy", max_buy.into()),
                    ("max_sell", max_sell.into()),
                ],
            );
        }
    }
    violations
}

/// One breach found by the [`LiveMonitor`] the moment it happened.
///
/// The shape mirrors the post-run [`EVENT_KIND`] events so live
/// findings can be compared against the recomputed verdicts (see
/// `carbon-edge report`): same `monitor` names, same `excused`
/// semantics, plus monitor-specific detail fields.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveFinding {
    /// Slot the breach was observed in (`None` never occurs live, but
    /// is kept for shape parity with post-run events).
    pub slot: Option<u64>,
    /// Which monitor fired: `"block_boundary"`, `"dual_sanity"`,
    /// `"trade_bounds"`, or `"thm2_fit"`.
    pub monitor: &'static str,
    /// Fault-attributable breaches are annotations, not violations —
    /// the same annotation rule as [`check_run`], except that live
    /// checks can only see faults injected *so far*.
    pub excused: bool,
    /// Monitor-specific detail fields, mirroring the post-run event.
    pub detail: Vec<(&'static str, Value)>,
}

/// Incremental theorem-envelope monitoring for the streaming serve
/// path: the same breaches [`check_run`] finds after the fact, caught
/// the moment their slot is served.
///
/// Driven by `ServeSession::push_slot` with each new [`SlotRecord`]
/// and the telemetry events that slot emitted. Findings never touch
/// the session's deterministic trace — the serve daemon exports them
/// through its operational sidecar and admin endpoint instead, so a
/// served trace stays byte-identical to a batch replay.
///
/// Coverage relative to [`check_run`]:
///
/// * **block boundaries** and **trade bounds** — exact: the per-slot
///   evidence is complete, so live and post-run verdicts agree.
/// * **dual sanity** — prefix-tight: the rectified ascent bound
///   `λ_t ≤ γ₁ Σ_{s≤t} [g^s]⁺` holds at every prefix, so the live
///   ceiling is *stricter* than the post-run whole-horizon ceiling.
///   Every post-run offender is caught live; a live-only finding is
///   an early warning.
/// * **Theorem 2 fit** — the terminal bound checked against the
///   running fit; the first crossing is reported live even though the
///   fit may later recede below the bound.
/// * **Theorem 1 regret** is inherently end-of-run (it needs the full
///   comparator) and stays with [`check_run`].
#[derive(Debug, Clone)]
pub struct LiveMonitor {
    /// Per-edge Theorem 1 block schedules; empty when the combo does
    /// not run Algorithm 1.
    schedules: Vec<Schedule>,
    /// Whether the combo runs Algorithm 2 (dual/fit/trade checks).
    checks_trader: bool,
    gamma1: f64,
    cap_share: f64,
    max_buy: f64,
    max_sell: f64,
    fit_bound: f64,
    lambda_multiple: f64,
    // Running state.
    lambda_budget: f64,
    fit_so_far: f64,
    fault_seen: bool,
    fit_breached: bool,
    last_lambda: Option<f64>,
    violations: u64,
    excused: u64,
}

impl LiveMonitor {
    /// Builds a monitor for a streaming run of `combo` over `env`.
    #[must_use]
    pub fn new(env: &Environment<'_>, combo: &Combo, cfg: &MonitorConfig) -> Self {
        let schedules = if combo.selector == SelectorKind::BlockTsallis {
            theorem1_schedules(env)
        } else {
            Vec::new()
        };
        let checks_trader = combo.trader == TraderKind::PrimalDual;
        let bounds = env.config().bounds;
        let horizon = env.horizon() as f64;
        Self {
            schedules,
            checks_trader,
            gamma1: crate::combos::theorem2_tuning(env).gamma1,
            cap_share: env.config().cap_share(),
            max_buy: bounds.max_buy.get(),
            max_sell: bounds.max_sell.get(),
            fit_bound: cfg.thm2_constant * 2.0 * env.config().cap_share() * horizon.powf(2.0 / 3.0),
            lambda_multiple: cfg.lambda_drive_multiple,
            lambda_budget: 0.0,
            fit_so_far: 0.0,
            fault_seen: false,
            fit_breached: false,
            last_lambda: None,
            violations: 0,
            excused: 0,
        }
    }

    /// Replays already-served slots without emitting findings — used
    /// when a serve session resumes from a checkpoint, so the running
    /// budgets pick up exactly where the interrupted process left
    /// them. Breaches inside the replayed prefix were the original
    /// process's to report.
    pub fn warm_up(&mut self, records: &[SlotRecord], events: &[Event]) {
        for record in records {
            let g = self.constraint_value(record);
            self.lambda_budget += self.gamma1 * g.max(0.0);
            self.fit_so_far += g;
        }
        self.fit_breached = self.fit_so_far.max(0.0) > self.fit_bound;
        for event in events {
            if event.kind == "fault" {
                self.fault_seen = true;
            } else if event.kind == "lambda" {
                if let Some(v) = float_field(event, "value") {
                    self.last_lambda = Some(v);
                }
            }
        }
    }

    /// Ingests one served slot: the new [`SlotRecord`] plus the
    /// telemetry events that slot appended (pass an empty slice when
    /// the session runs without telemetry — record-based checks still
    /// apply). Returns the findings this slot produced, already
    /// tallied into [`violations`](Self::violations).
    pub fn observe_slot(&mut self, record: &SlotRecord, events: &[Event]) -> Vec<LiveFinding> {
        let mut findings = Vec::new();
        if events.iter().any(|e| e.kind == "fault") {
            self.fault_seen = true;
        }

        // Block boundaries (Algorithm 1): a download inside a block
        // breaks the Theorem 1 schedule contract, unless injected
        // download failures delayed it (the `retries` field).
        for event in events.iter().filter(|e| e.kind == "switch") {
            let Some(t) = event.slot else { continue };
            let Some(edge) = uint_field(event, "edge") else {
                continue;
            };
            let Some(schedule) = self.schedules.get(edge as usize) else {
                continue;
            };
            if !schedule.is_block_start(t as usize) {
                let excused = event.fields.iter().any(|(name, _)| name == "retries");
                findings.push(LiveFinding {
                    slot: Some(t),
                    monitor: "block_boundary",
                    excused,
                    detail: vec![
                        ("edge", edge.into()),
                        ("block", (schedule.block_of(t as usize) as u64).into()),
                    ],
                });
            }
        }

        if self.checks_trader {
            let t = record.t as u64;
            // Trade bounds stay hard under faults, exactly as in
            // `check_trade_bounds`.
            let eps = 1e-9;
            if record.bought > self.max_buy + eps || record.sold > self.max_sell + eps {
                findings.push(LiveFinding {
                    slot: Some(t),
                    monitor: "trade_bounds",
                    excused: false,
                    detail: vec![
                        ("bought", record.bought.into()),
                        ("sold", record.sold.into()),
                        ("max_buy", self.max_buy.into()),
                        ("max_sell", self.max_sell.into()),
                    ],
                });
            }

            // Grow the travel budget with this slot's drive *before*
            // checking its λ: the dual update for slot t already saw
            // g^t.
            let g = self.constraint_value(record);
            self.lambda_budget += self.gamma1 * g.max(0.0);
            let ceiling = self.lambda_multiple * self.lambda_budget;
            for event in events.iter().filter(|e| e.kind == "lambda") {
                let Some(lambda) = float_field(event, "value") else {
                    continue;
                };
                self.last_lambda = Some(lambda);
                if lambda < -1e-9 || lambda > ceiling || !lambda.is_finite() {
                    findings.push(LiveFinding {
                        slot: event.slot,
                        monitor: "dual_sanity",
                        excused: false,
                        detail: vec![("lambda", lambda.into()), ("ceiling", ceiling.into())],
                    });
                }
            }

            // Running Theorem 2 fit against the terminal bound; report
            // the first crossing only (the fit may recede, which the
            // post-run check settles).
            self.fit_so_far += g;
            if !self.fit_breached && self.fit_so_far.max(0.0) > self.fit_bound {
                self.fit_breached = true;
                findings.push(LiveFinding {
                    slot: Some(t),
                    monitor: "thm2_fit",
                    excused: self.fault_seen,
                    detail: vec![
                        ("observed", self.fit_so_far.max(0.0).into()),
                        ("bound", self.fit_bound.into()),
                    ],
                });
            }
        }

        for f in &findings {
            if f.excused {
                self.excused += 1;
            } else {
                self.violations += 1;
            }
        }
        findings
    }

    /// Ingests the trader's post-update dual value for slot `t`
    /// directly. Streaming runs flush `"lambda"` telemetry events only
    /// at finish, so the serve loop feeds λ from the live trader
    /// through this method instead; it applies the same sanity
    /// envelope as event-carried values. Call it *after*
    /// [`observe_slot`](Self::observe_slot) for the same slot — the
    /// travel budget must already include that slot's drive, exactly
    /// as the trader's own dual update saw it. Do not mix with
    /// event-carried λ for the same slots (the breach would be
    /// double-counted).
    pub fn observe_lambda(&mut self, slot: u64, lambda: f64) -> Option<LiveFinding> {
        if !self.checks_trader {
            return None;
        }
        self.last_lambda = Some(lambda);
        let ceiling = self.lambda_multiple * self.lambda_budget;
        if lambda < -1e-9 || lambda > ceiling || !lambda.is_finite() {
            self.violations += 1;
            return Some(LiveFinding {
                slot: Some(slot),
                monitor: "dual_sanity",
                excused: false,
                detail: vec![("lambda", lambda.into()), ("ceiling", ceiling.into())],
            });
        }
        None
    }

    /// This slot's constraint value `g^t = e^t − R/T − z_b + z_s`.
    fn constraint_value(&self, record: &SlotRecord) -> f64 {
        record.emissions - self.cap_share - record.bought + record.sold
    }

    /// Unexcused breaches found so far.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Fault-excused breaches found so far.
    #[must_use]
    pub fn excused_count(&self) -> u64 {
        self.excused
    }

    /// The latest dual variable seen — on the `"lambda"` event stream
    /// or fed live via [`observe_lambda`](Self::observe_lambda).
    #[must_use]
    pub fn last_lambda(&self) -> Option<f64> {
        self.last_lambda
    }

    /// The running rectified fit `‖[Σ_{s≤t} g^s]⁺‖`.
    #[must_use]
    pub fn fit_observed(&self) -> f64 {
        self.fit_so_far.max(0.0)
    }

    /// The terminal Theorem 2 fit bound the run is checked against.
    #[must_use]
    pub fn fit_bound(&self) -> f64 {
        self.fit_bound
    }

    /// The current dual travel-budget ceiling
    /// `multiple · γ₁ Σ_{s≤t} [g^s]⁺`.
    #[must_use]
    pub fn lambda_ceiling(&self) -> f64 {
        self.lambda_multiple * self.lambda_budget
    }
}

/// The first `UInt` field named `name` on an event.
fn uint_field(event: &Event, name: &str) -> Option<u64> {
    event.fields.iter().find_map(|(n, v)| {
        if n == name {
            if let Value::UInt(x) = v {
                return Some(*x);
            }
        }
        None
    })
}

/// The first `Float` field named `name` on an event.
fn float_field(event: &Event, name: &str) -> Option<f64> {
    event.fields.iter().find_map(|(n, v)| {
        if n == name {
            if let Value::Float(x) = v {
                return Some(*x);
            }
        }
        None
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::OfflinePolicy;
    use cne_edgesim::SimConfig;
    use cne_nn::{ModelZoo, ZooConfig};
    use cne_simdata::dataset::TaskKind;
    use cne_util::SeedSequence;

    fn setup() -> (ModelZoo, SimConfig) {
        let zoo = ModelZoo::train(
            TaskKind::MnistLike,
            &ZooConfig::fast(),
            &SeedSequence::new(20),
        );
        (zoo, SimConfig::fast_test(TaskKind::MnistLike))
    }

    #[test]
    fn nominal_ours_run_passes_every_monitor() {
        let (zoo, cfg) = setup();
        for seed in [1u64, 2, 3] {
            let root = SeedSequence::new(seed);
            let env = Environment::new(cfg.clone(), &zoo, &root.derive("env"));
            let mut policy = Combo::ours().build(&env, &root.derive("alg"));
            let mut rec = Recorder::new();
            let record = env.run_traced(&mut policy, &mut rec);
            let summary = check_run(
                &env,
                &record,
                &PolicySpec::Combo(Combo::ours()),
                &MonitorConfig::default(),
                &mut rec,
            );
            assert_eq!(
                summary.violations, 0,
                "seed {seed}: nominal run tripped a monitor: {summary:?}"
            );
            let (observed, bound) = summary.thm1.expect("thm1 applies to Ours");
            assert!(observed <= bound, "thm1 {observed} > {bound}");
            let (fit, fit_bound) = summary.thm2_fit.expect("thm2 applies to Ours");
            assert!(fit <= fit_bound, "fit {fit} > {fit_bound}");
            assert_eq!(rec.counter("envelope.violations"), 0);
        }
    }

    #[test]
    fn faulted_ours_run_annotates_instead_of_alarming() {
        let (zoo, mut cfg) = setup();
        cfg.faults = Some(cne_faults::FaultScenario::mixed("mixed-10", 0.1));
        let root = SeedSequence::new(9);
        let env = Environment::new(cfg, &zoo, &root.derive("env"));
        let mut policy = Combo::ours().build(&env, &root.derive("alg"));
        let mut rec = Recorder::new();
        let record = env.run_traced(&mut policy, &mut rec);
        assert!(
            rec.events().iter().any(|e| e.kind == "fault"),
            "the 10% schedule should fire somewhere"
        );
        let summary = check_run(
            &env,
            &record,
            &PolicySpec::Combo(Combo::ours()),
            &MonitorConfig::default(),
            &mut rec,
        );
        assert_eq!(
            summary.violations, 0,
            "fault-attributable breaches must be excused, not counted: {summary:?}"
        );
        assert_eq!(rec.counter("envelope.violations"), 0);
        // Whatever envelope events were emitted are excused annotations.
        for e in rec.events().iter().filter(|e| e.kind == EVENT_KIND) {
            assert!(
                e.fields
                    .iter()
                    .any(|(n, v)| n == "excused" && *v == Value::Bool(true)),
                "unexcused envelope event under faults: {e:?}"
            );
        }
    }

    #[test]
    fn offline_is_never_checked() {
        let (zoo, cfg) = setup();
        let env = Environment::new(cfg, &zoo, &SeedSequence::new(5));
        let mut policy = OfflinePolicy::plan(&env);
        let mut rec = Recorder::new();
        let record = env.run_traced(&mut policy, &mut rec);
        let summary = check_run(
            &env,
            &record,
            &PolicySpec::Offline,
            &MonitorConfig::default(),
            &mut rec,
        );
        assert_eq!(summary, MonitorSummary::default());
        assert!(summary.thm1.is_none());
        assert!(summary.thm2_fit.is_none());
    }

    #[test]
    fn schedules_match_the_combo_construction() {
        let (zoo, cfg) = setup();
        let env = Environment::new(cfg, &zoo, &SeedSequence::new(6));
        let schedules = theorem1_schedules(&env);
        assert_eq!(schedules.len(), env.num_edges());
        for s in &schedules {
            assert_eq!(s.horizon(), env.horizon());
            assert!(s.is_block_start(0));
        }
    }

    #[test]
    fn trade_bounds_catch_an_oversized_trade() {
        let (zoo, cfg) = setup();
        let max_buy = cfg.bounds.max_buy.get();
        let env = Environment::new(cfg, &zoo, &SeedSequence::new(7));
        let mut policy = OfflinePolicy::plan(&env);
        let mut rec = Recorder::new();
        let mut record = env.run_traced(&mut policy, &mut rec);
        record.slots[3].bought = max_buy * 2.0;
        let violations = check_trade_bounds(&env, &record, &mut rec);
        assert_eq!(violations, 1);
        let event = rec
            .events()
            .iter()
            .find(|e| e.kind == EVENT_KIND)
            .expect("envelope event recorded");
        assert_eq!(event.slot, Some(3));
    }

    /// The run's telemetry events that belong to slot `t` — how a
    /// non-serve test slices a batch trace into per-slot deliveries.
    fn events_for_slot(rec: &Recorder, t: u64) -> Vec<Event> {
        rec.events()
            .iter()
            .filter(|e| e.slot == Some(t))
            .cloned()
            .collect()
    }

    #[test]
    fn live_monitor_is_silent_on_a_nominal_run_and_tracks_the_fit() {
        let (zoo, cfg) = setup();
        let root = SeedSequence::new(3);
        let env = Environment::new(cfg, &zoo, &root.derive("env"));
        let mut policy = Combo::ours().build(&env, &root.derive("alg"));
        let mut rec = Recorder::new();
        let record = env.run_traced(&mut policy, &mut rec);

        let mut live = LiveMonitor::new(&env, &Combo::ours(), &MonitorConfig::default());
        for slot in &record.slots {
            let events = events_for_slot(&rec, slot.t as u64);
            let findings = live.observe_slot(slot, &events);
            assert!(findings.is_empty(), "nominal run fired live: {findings:?}");
        }
        assert_eq!(live.violations(), 0);
        assert_eq!(live.excused_count(), 0);
        // The running fit lands exactly on the post-run terminal fit.
        assert!((live.fit_observed() - regret::fit(&record)).abs() < 1e-12);
        assert!(
            live.last_lambda().is_some(),
            "Ours emits a lambda trajectory the monitor should have seen"
        );
    }

    #[test]
    fn live_trade_and_dual_checks_stay_hard_under_faults() {
        let (zoo, cfg) = setup();
        let max_buy = cfg.bounds.max_buy.get();
        let env = Environment::new(cfg, &zoo, &SeedSequence::new(7));
        let mut policy = OfflinePolicy::plan(&env);
        let mut rec = Recorder::new();
        let mut record = env.run_traced(&mut policy, &mut rec);
        record.slots[0].bought = max_buy * 2.0;

        let mut live = LiveMonitor::new(&env, &Combo::ours(), &MonitorConfig::default());
        let fault = Event {
            slot: Some(0),
            kind: "fault".into(),
            fields: Vec::new(),
        };
        let lambda = Event {
            slot: Some(0),
            kind: "lambda".into(),
            fields: vec![("value".into(), Value::Float(-0.5))],
        };
        let findings = live.observe_slot(&record.slots[0], &[fault, lambda]);
        let monitors: Vec<_> = findings.iter().map(|f| f.monitor).collect();
        assert!(monitors.contains(&"trade_bounds"), "{monitors:?}");
        assert!(monitors.contains(&"dual_sanity"), "{monitors:?}");
        // A fault in the same slot does not excuse the hard checks.
        assert!(findings.iter().all(|f| !f.excused));
        assert_eq!(live.violations(), findings.len() as u64);
    }

    #[test]
    fn live_fit_breach_fires_once_and_respects_fault_excusal() {
        let (zoo, cfg) = setup();
        let env = Environment::new(cfg, &zoo, &SeedSequence::new(8));
        let mut policy = OfflinePolicy::plan(&env);
        let mut rec = Recorder::new();
        let mut record = env.run_traced(&mut policy, &mut rec);

        let mut live = LiveMonitor::new(&env, &Combo::ours(), &MonitorConfig::default());
        // A fault before the breach turns the finding into an annotation.
        let fault = Event {
            slot: Some(0),
            kind: "fault".into(),
            fields: Vec::new(),
        };
        assert!(live.observe_slot(&record.slots[0], &[fault]).is_empty());

        record.slots[1].emissions = live.fit_bound() * 2.0;
        let crossing = live.observe_slot(&record.slots[1], &[]);
        assert_eq!(crossing.len(), 1);
        assert_eq!(crossing[0].monitor, "thm2_fit");
        assert!(crossing[0].excused);

        // One-shot: staying above the bound emits nothing further.
        record.slots[2].emissions = live.fit_bound();
        let after = live.observe_slot(&record.slots[2], &[]);
        assert!(after.iter().all(|f| f.monitor != "thm2_fit"), "{after:?}");
        assert_eq!(live.violations(), 0);
        assert_eq!(live.excused_count(), 1);
    }

    #[test]
    fn live_block_boundary_mirrors_the_post_run_excusal_rule() {
        let (zoo, cfg) = setup();
        let env = Environment::new(cfg, &zoo, &SeedSequence::new(9));
        let mut policy = OfflinePolicy::plan(&env);
        let mut rec = Recorder::new();
        let record = env.run_traced(&mut policy, &mut rec);
        let schedules = theorem1_schedules(&env);
        let t = (1..env.horizon())
            .find(|&t| !schedules[0].is_block_start(t))
            .expect("fast-test schedule has interior slots");

        let mut live = LiveMonitor::new(&env, &Combo::ours(), &MonitorConfig::default());
        let bare = Event {
            slot: Some(t as u64),
            kind: "switch".into(),
            fields: vec![("edge".into(), Value::UInt(0))],
        };
        let delayed = Event {
            slot: Some(t as u64),
            kind: "switch".into(),
            fields: vec![
                ("edge".into(), Value::UInt(0)),
                ("retries".into(), Value::UInt(2)),
            ],
        };
        let findings = live.observe_slot(&record.slots[t], &[bare, delayed]);
        let boundary: Vec<_> = findings
            .iter()
            .filter(|f| f.monitor == "block_boundary")
            .collect();
        assert_eq!(boundary.len(), 2);
        assert!(!boundary[0].excused, "a bare mid-block switch is a breach");
        assert!(boundary[1].excused, "a fault-delayed switch is annotated");
        assert_eq!(live.violations(), 1);
        assert_eq!(live.excused_count(), 1);
    }

    #[test]
    fn warm_up_replays_budgets_without_reporting() {
        let (zoo, cfg) = setup();
        let root = SeedSequence::new(10);
        let env = Environment::new(cfg, &zoo, &root.derive("env"));
        let mut policy = Combo::ours().build(&env, &root.derive("alg"));
        let mut rec = Recorder::new();
        let record = env.run_traced(&mut policy, &mut rec);

        let mut full = LiveMonitor::new(&env, &Combo::ours(), &MonitorConfig::default());
        for slot in &record.slots {
            full.observe_slot(slot, &events_for_slot(&rec, slot.t as u64));
        }

        let split = record.slots.len() / 2;
        let mut resumed = LiveMonitor::new(&env, &Combo::ours(), &MonitorConfig::default());
        let prefix_events: Vec<Event> = rec
            .events()
            .iter()
            .filter(|e| e.slot.is_some_and(|s| (s as usize) < split))
            .cloned()
            .collect();
        resumed.warm_up(&record.slots[..split], &prefix_events);
        assert_eq!(resumed.violations(), 0, "warm-up never reports");
        assert_eq!(resumed.excused_count(), 0);
        for slot in &record.slots[split..] {
            resumed.observe_slot(slot, &events_for_slot(&rec, slot.t as u64));
        }
        // Both budgets were accumulated in the same slot order, so they
        // agree exactly.
        assert_eq!(full.fit_observed(), resumed.fit_observed());
        assert_eq!(full.lambda_ceiling(), resumed.lambda_ceiling());
        assert_eq!(full.violations(), resumed.violations());
        assert_eq!(full.last_lambda(), resumed.last_lambda());
    }

    #[test]
    fn dual_sanity_flags_negative_and_diverging_lambda() {
        let (zoo, cfg) = setup();
        let env = Environment::new(cfg, &zoo, &SeedSequence::new(8));
        let mut policy = OfflinePolicy::plan(&env);
        let mut rec = Recorder::new();
        let record = env.run_traced(&mut policy, &mut rec);
        // The travel budget the monitor reconstructs for this record.
        let cap_share = env.config().cap_share();
        let budget: f64 = record
            .slots
            .iter()
            .map(|s| (s.emissions - cap_share - s.bought + s.sold).max(0.0))
            .sum::<f64>()
            * crate::combos::theorem2_tuning(&env).gamma1;
        rec.event(Some(1), "lambda", &[("value", (-0.5f64).into())]);
        rec.event(
            Some(2),
            "lambda",
            &[("value", (budget * 10.0 + 1.0).into())],
        );
        rec.event(Some(3), "lambda", &[("value", (budget * 0.5).into())]);
        let violations = check_dual_sanity(&env, &record, &MonitorConfig::default(), &mut rec);
        assert_eq!(violations, 2, "negative and diverging lambdas flagged");
    }
}
