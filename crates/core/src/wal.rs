//! Durable write-ahead arrival log (WAL) for the streaming serve
//! daemon.
//!
//! Checkpoints bound what a crash can lose to a `--checkpoint-every`
//! window; the WAL closes that window to (at most) the last un-synced
//! frame. The daemon appends every *input* of the deterministic run —
//! arrival batches, slot-close markers, checkpoint-installed markers —
//! before applying it, so the durable state is always
//!
//! ```text
//! recovered run = last checkpoint + WAL tail replayed through the
//!                 ordinary ServeSession machinery
//! ```
//!
//! and recovery is bit-identical to the uninterrupted run because the
//! simulator is a pure function of its inputs.
//!
//! # On-disk format
//!
//! A WAL is a directory of fixed-prefix segment files
//! (`wal-00000001.log`, `wal-00000002.log`, …), each a sequence of
//! CRC-framed, length-prefixed records:
//!
//! ```text
//! frame   := len:u32-le  crc:u32-le  payload[len]     (crc over payload)
//! payload := 0x01 slot:u64-le n:u32-le (edge:u64-le count:u64-le)*n   arrivals
//!          | 0x02 slot:u64-le                                          slot close
//!          | 0x03 slot:u64-le                                          checkpoint installed
//! ```
//!
//! On open, the **last** segment is scanned and truncated at the first
//! torn or corrupt frame (a crash mid-append legitimately leaves one);
//! a corrupt frame in any *earlier* segment is real corruption and
//! fails loudly. Segments rotate at a size threshold, and a durably
//! installed checkpoint garbage-collects every segment before it (the
//! fresh segment opens with a [`WalRecord::CheckpointInstalled`]
//! marker, so the tail self-describes the checkpoint it follows).
//!
//! # Fsync policy
//!
//! | [`SyncPolicy`] | fsync on | survives |
//! |---|---|---|
//! | `Every` | every appended frame | power loss, to the last frame |
//! | `Slot`  | slot-close and checkpoint frames | power loss, to the last closed slot |
//! | `Off`   | never (kernel writeback only) | process crash (SIGKILL/OOM), not power loss |
//!
//! Frames are always `write(2)`-flushed before the daemon applies the
//! record, so a killed *process* never loses acknowledged input under
//! any policy — the policies only trade how much a *machine* crash can
//! roll back against fsync latency.

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

use cne_util::crc::crc32;

use crate::crashpoint;

/// Frames larger than this are rejected as corrupt rather than
/// allocated: a legitimate arrival batch is a few dozen bytes.
pub const MAX_FRAME_BYTES: u32 = 1 << 20;

/// Default segment-rotation threshold.
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 << 20;

const SEGMENT_PREFIX: &str = "wal-";
const SEGMENT_SUFFIX: &str = ".log";

/// When the log is fsynced (see the module table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// fsync after every appended frame.
    Every,
    /// fsync on slot-close and checkpoint-installed frames only.
    #[default]
    Slot,
    /// Never fsync; frames are still flushed to the kernel.
    Off,
}

impl std::str::FromStr for SyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "every" => Ok(Self::Every),
            "slot" => Ok(Self::Slot),
            "off" => Ok(Self::Off),
            other => Err(format!(
                "unknown WAL sync policy '{other}' (expected 'every', 'slot', or 'off')"
            )),
        }
    }
}

impl std::fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Every => "every",
            Self::Slot => "slot",
            Self::Off => "off",
        })
    }
}

/// Knobs for a [`Wal`].
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Fsync policy for appended frames.
    pub sync: SyncPolicy,
    /// Rotate to a new segment once the current one reaches this size.
    pub segment_bytes: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        Self {
            sync: SyncPolicy::default(),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
        }
    }
}

/// One durable record: an input of the deterministic run, or a marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Raw arrivals accumulated into the (still open) slot `slot`:
    /// `(edge, count)` pairs, additive within the slot.
    Arrivals {
        /// The open slot the arrivals belong to.
        slot: u64,
        /// `(edge index, request count)` pairs.
        pairs: Vec<(u64, u64)>,
    },
    /// Slot `slot` closed with whatever arrivals were recorded for it.
    SlotClose {
        /// The slot that closed.
        slot: u64,
    },
    /// A checkpoint capturing every slot `< slot` was durably
    /// installed; the WAL tail from here on assumes it.
    CheckpointInstalled {
        /// The checkpoint's `next_slot`.
        slot: u64,
    },
}

impl WalRecord {
    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            Self::Arrivals { slot, pairs } => {
                out.push(0x01);
                out.extend_from_slice(&slot.to_le_bytes());
                out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
                for (edge, count) in pairs {
                    out.extend_from_slice(&edge.to_le_bytes());
                    out.extend_from_slice(&count.to_le_bytes());
                }
            }
            Self::SlotClose { slot } => {
                out.push(0x02);
                out.extend_from_slice(&slot.to_le_bytes());
            }
            Self::CheckpointInstalled { slot } => {
                out.push(0x03);
                out.extend_from_slice(&slot.to_le_bytes());
            }
        }
        out
    }

    fn decode_payload(payload: &[u8]) -> Result<Self, String> {
        let mut cursor = Cursor {
            buf: payload,
            at: 0,
        };
        let tag = cursor.u8()?;
        let record = match tag {
            0x01 => {
                let slot = cursor.u64()?;
                let n = cursor.u32()?;
                if u64::from(n) > (payload.len() as u64) / 16 {
                    return Err(format!("arrival batch claims {n} pairs beyond the frame"));
                }
                let mut pairs = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    pairs.push((cursor.u64()?, cursor.u64()?));
                }
                Self::Arrivals { slot, pairs }
            }
            0x02 => Self::SlotClose {
                slot: cursor.u64()?,
            },
            0x03 => Self::CheckpointInstalled {
                slot: cursor.u64()?,
            },
            other => return Err(format!("unknown record tag 0x{other:02x}")),
        };
        if cursor.at != payload.len() {
            return Err(format!(
                "{} trailing bytes after the record",
                payload.len() - cursor.at
            ));
        }
        Ok(record)
    }

    /// Whether the frame is a sync point under [`SyncPolicy::Slot`].
    fn is_boundary(&self) -> bool {
        matches!(
            self,
            Self::SlotClose { .. } | Self::CheckpointInstalled { .. }
        )
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| "record truncated".to_owned())?;
        let bytes = &self.buf[self.at..end];
        self.at = end;
        Ok(bytes)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

/// Where and why a scan stopped short of a segment's physical end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// The segment holding the bad frame.
    pub segment: PathBuf,
    /// Byte offset of the first torn/corrupt frame.
    pub offset: u64,
    /// Human-readable cause (short read, CRC mismatch, bad tag, …).
    pub reason: String,
}

/// Everything a scan of an existing WAL directory yields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecovery {
    /// Every valid record, in append order across segments.
    pub records: Vec<WalRecord>,
    /// The torn tail, when the last segment ended mid-frame. `open`
    /// truncates it away; [`read_records`] only reports it.
    pub torn: Option<TornTail>,
}

/// The effect of replaying a WAL tail on top of a checkpoint at
/// `start_slot`: fully closed slots to push through the session, plus
/// the partially accumulated open slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalTail {
    /// First slot the tail closes (the checkpoint's `next_slot`).
    pub start_slot: u64,
    /// Per-edge arrival totals for each closed slot, in slot order
    /// starting at `start_slot`.
    pub closed: Vec<Vec<u64>>,
    /// Per-edge arrivals recorded for the still-open slot
    /// `start_slot + closed.len()`.
    pub open: Vec<u64>,
    /// Request lines recorded for the open slot (the daemon's
    /// `--slot-requests` counter). A group-committed `Arrivals` record
    /// contributes one line per `(edge, count)` pair — the daemon
    /// coalesces a burst of lines into a single record, and replay
    /// must recover the same per-line accounting.
    pub open_lines: u64,
}

impl WalTail {
    /// Whether the tail carries no information beyond the checkpoint.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.closed.is_empty() && self.open_lines == 0
    }
}

fn io_err(what: &str, path: &Path, e: &std::io::Error) -> String {
    format!("cannot {what} {}: {e}", path.display())
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{index:08}{SEGMENT_SUFFIX}"))
}

fn segment_index(name: &str) -> Option<u64> {
    name.strip_prefix(SEGMENT_PREFIX)?
        .strip_suffix(SEGMENT_SUFFIX)?
        .parse()
        .ok()
}

/// Sorted `(index, path)` list of the directory's segment files.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, String> {
    let mut segments = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| io_err("read WAL directory", dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read WAL directory", dir, &e))?;
        if let Some(index) = entry.file_name().to_str().and_then(segment_index) {
            segments.push((index, entry.path()));
        }
    }
    segments.sort_unstable();
    Ok(segments)
}

/// Whether `dir` already holds WAL segments (so a fresh daemon can
/// refuse to clobber a previous run's log).
#[must_use]
pub fn dir_has_segments(dir: &Path) -> bool {
    list_segments(dir).is_ok_and(|segments| !segments.is_empty())
}

/// Scans one segment. A bad frame in the last segment is a torn tail
/// (returned); in any earlier segment it is corruption (an error).
fn read_segment(
    path: &Path,
    is_last: bool,
    records: &mut Vec<WalRecord>,
) -> Result<Option<TornTail>, String> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| io_err("read WAL segment", path, &e))?;
    let mut at: usize = 0;
    let torn = loop {
        if at == bytes.len() {
            break None;
        }
        let bad = |reason: String| TornTail {
            segment: path.to_path_buf(),
            offset: at as u64,
            reason,
        };
        if bytes.len() - at < 8 {
            break Some(bad(format!("{} trailing header bytes", bytes.len() - at)));
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_FRAME_BYTES {
            break Some(bad(format!("implausible frame length {len}")));
        }
        let Some(end) = (at + 8)
            .checked_add(len as usize)
            .filter(|&e| e <= bytes.len())
        else {
            break Some(bad(format!(
                "frame claims {len} payload bytes, {} remain",
                bytes.len() - at - 8
            )));
        };
        let payload = &bytes[at + 8..end];
        if crc32(payload) != crc {
            break Some(bad("CRC mismatch".to_owned()));
        }
        match WalRecord::decode_payload(payload) {
            Ok(record) => records.push(record),
            Err(reason) => break Some(bad(reason)),
        }
        at = end;
    };
    match torn {
        Some(tail) if !is_last => Err(format!(
            "WAL segment {} is corrupt at byte {} ({}) and is not the last segment — \
             this is not a torn tail; refusing to guess at the missing records",
            tail.segment.display(),
            tail.offset,
            tail.reason
        )),
        other => Ok(other),
    }
}

/// Read-only scan of a WAL directory: every valid record in append
/// order, plus the torn tail when the last segment ends mid-frame.
/// Used by recovery tooling and the chaos harness; never mutates the
/// log.
///
/// # Errors
/// Returns a message on I/O failure or corruption in a non-last
/// segment.
pub fn read_records(dir: &Path) -> Result<WalRecovery, String> {
    let segments = list_segments(dir)?;
    let mut records = Vec::new();
    let mut torn = None;
    for (i, (_, path)) in segments.iter().enumerate() {
        torn = read_segment(path, i + 1 == segments.len(), &mut records)?;
    }
    Ok(WalRecovery { records, torn })
}

#[cfg(unix)]
fn sync_dir(dir: &Path) -> Result<(), String> {
    File::open(dir)
        .and_then(|f| f.sync_all())
        .map_err(|e| io_err("fsync WAL directory", dir, &e))
}

#[cfg(not(unix))]
fn sync_dir(_dir: &Path) -> Result<(), String> {
    // Directory fsync is a POSIX notion; other platforms get the
    // file-level durability only.
    Ok(())
}

/// An append handle on a WAL directory.
///
/// Created by [`Wal::open`], which also performs recovery: scan every
/// segment, truncate the last one at the first torn frame, and position
/// the writer at the end.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    options: WalOptions,
    file: File,
    segment: u64,
    segment_bytes: u64,
    appends: u64,
}

impl Wal {
    /// Opens (creating if needed) the WAL at `dir` and recovers its
    /// contents: all valid records are returned, and a torn tail in
    /// the last segment is truncated away (durably) before the writer
    /// is positioned after the last valid frame.
    ///
    /// # Errors
    /// Returns a message on I/O failure or corruption in a non-last
    /// segment.
    pub fn open(dir: &Path, options: WalOptions) -> Result<(Self, WalRecovery), String> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("create WAL directory", dir, &e))?;
        let recovery = read_records(dir)?;
        if let Some(torn) = &recovery.torn {
            let file = OpenOptions::new()
                .write(true)
                .open(&torn.segment)
                .map_err(|e| io_err("open WAL segment", &torn.segment, &e))?;
            file.set_len(torn.offset)
                .map_err(|e| io_err("truncate WAL segment", &torn.segment, &e))?;
            file.sync_all()
                .map_err(|e| io_err("fsync WAL segment", &torn.segment, &e))?;
        }
        let segments = list_segments(dir)?;
        let (segment, path) = match segments.last() {
            Some((index, path)) => (*index, path.clone()),
            None => {
                let path = segment_path(dir, 1);
                (1, path)
            }
        };
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("open WAL segment", &path, &e))?;
        sync_dir(dir)?;
        let segment_bytes = file
            .metadata()
            .map_err(|e| io_err("stat WAL segment", &path, &e))?
            .len();
        Ok((
            Self {
                dir: dir.to_path_buf(),
                options,
                file,
                segment,
                segment_bytes,
                appends: 0,
            },
            recovery,
        ))
    }

    /// The directory this WAL lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one record, honoring the fsync policy. The frame is
    /// fully flushed to the kernel before this returns, so a killed
    /// process never loses an acknowledged record.
    ///
    /// # Errors
    /// Returns a message on any I/O failure; the caller decides
    /// whether to retry or degrade.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), String> {
        if self.segment_bytes >= self.options.segment_bytes {
            self.rotate()?;
        }
        let payload = record.encode_payload();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.appends += 1;
        if crashpoint::hit("wal-torn-append", self.appends) {
            // Chaos drill: simulate a crash mid-append by persisting
            // only a prefix of the frame, then dying without cleanup.
            let _ = self.file.write_all(&frame[..8 + payload.len() / 2]);
            let _ = self.file.sync_all();
            crashpoint::crash("wal-torn-append");
        }
        let path = segment_path(&self.dir, self.segment);
        self.file
            .write_all(&frame)
            .map_err(|e| io_err("append to WAL segment", &path, &e))?;
        self.segment_bytes += frame.len() as u64;
        let must_sync = match self.options.sync {
            SyncPolicy::Every => true,
            SyncPolicy::Slot => record.is_boundary(),
            SyncPolicy::Off => false,
        };
        if must_sync {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces an fsync of the current segment, regardless of policy.
    ///
    /// # Errors
    /// Returns a message on I/O failure.
    pub fn sync(&mut self) -> Result<(), String> {
        self.file.sync_data().map_err(|e| {
            io_err(
                "fsync WAL segment",
                &segment_path(&self.dir, self.segment),
                &e,
            )
        })
    }

    fn rotate(&mut self) -> Result<(), String> {
        // The closing segment must be durable before the log moves on:
        // recovery reads segments in order and only tolerates a torn
        // tail in the last one.
        if self.options.sync != SyncPolicy::Off {
            self.sync()?;
        }
        self.segment += 1;
        let path = segment_path(&self.dir, self.segment);
        self.file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("create WAL segment", &path, &e))?;
        self.segment_bytes = 0;
        sync_dir(&self.dir)
    }

    /// Records that a checkpoint capturing every slot `< slot` was
    /// durably installed: rotates to a fresh segment whose first frame
    /// is the [`WalRecord::CheckpointInstalled`] marker, then
    /// garbage-collects every older segment (their records are all
    /// covered by the checkpoint).
    ///
    /// Call this only **after** the checkpoint file itself is durably
    /// on disk — the GC assumes it.
    ///
    /// # Errors
    /// Returns a message when the marker cannot be appended; GC
    /// deletion failures are ignored (stale segments are harmless —
    /// replay skips records the checkpoint covers).
    pub fn install_checkpoint(&mut self, slot: u64) -> Result<(), String> {
        self.rotate()?;
        self.append(&WalRecord::CheckpointInstalled { slot })?;
        if self.options.sync == SyncPolicy::Off {
            // Even `off` makes the marker durable: it anchors the GC.
            self.sync()?;
        }
        for (index, path) in list_segments(&self.dir)? {
            if index < self.segment {
                let _ = std::fs::remove_file(path);
            }
        }
        sync_dir(&self.dir)
    }
}

/// Replays scanned records on top of a checkpoint at `start_slot`:
/// records for earlier slots are skipped (the checkpoint covers them),
/// later ones must form a contiguous slot sequence.
///
/// # Errors
/// Returns a message when the record sequence is inconsistent — slots
/// out of order, arrivals for an edge outside the fleet, or a
/// checkpoint marker beyond the replayed state (records the marker's
/// checkpoint superseded were garbage-collected, so this WAL cannot be
/// replayed onto an *older* checkpoint).
pub fn replay(records: &[WalRecord], num_edges: usize, start_slot: u64) -> Result<WalTail, String> {
    let mut tail = WalTail {
        start_slot,
        closed: Vec::new(),
        open: vec![0; num_edges],
        open_lines: 0,
    };
    let mut cursor = start_slot;
    for record in records {
        match record {
            WalRecord::Arrivals { slot, pairs } => {
                if *slot < start_slot {
                    continue;
                }
                if *slot != cursor {
                    return Err(format!(
                        "WAL slot sequence broken: arrivals for slot {slot} while slot \
                         {cursor} is open"
                    ));
                }
                for (edge, count) in pairs {
                    let lane = tail
                        .open
                        .get_mut(usize::try_from(*edge).unwrap_or(usize::MAX))
                        .ok_or_else(|| {
                            format!("WAL arrival for edge {edge}, but the fleet has {num_edges}")
                        })?;
                    *lane = lane.saturating_add(*count);
                }
                tail.open_lines += pairs.len() as u64;
            }
            WalRecord::SlotClose { slot } => {
                if *slot < start_slot {
                    continue;
                }
                if *slot != cursor {
                    return Err(format!(
                        "WAL slot sequence broken: close for slot {slot} while slot \
                         {cursor} is open"
                    ));
                }
                tail.closed
                    .push(std::mem::replace(&mut tail.open, vec![0; num_edges]));
                tail.open_lines = 0;
                cursor += 1;
            }
            WalRecord::CheckpointInstalled { slot } => {
                if *slot > cursor {
                    return Err(format!(
                        "WAL assumes a checkpoint at slot {slot}, but replay only reaches \
                         slot {cursor} — the records before it were garbage-collected; \
                         resume from that checkpoint, not an older one"
                    ));
                }
            }
        }
    }
    Ok(tail)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cne-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Arrivals {
                slot: 0,
                pairs: vec![(0, 3), (2, 1)],
            },
            WalRecord::Arrivals {
                slot: 0,
                pairs: vec![(1, 7)],
            },
            WalRecord::SlotClose { slot: 0 },
            WalRecord::Arrivals {
                slot: 1,
                pairs: vec![(0, 2)],
            },
            WalRecord::SlotClose { slot: 1 },
        ]
    }

    #[test]
    fn append_then_read_round_trips() {
        let dir = temp_dir("roundtrip");
        let (mut wal, recovery) = Wal::open(&dir, WalOptions::default()).expect("open");
        assert!(recovery.records.is_empty() && recovery.torn.is_none());
        for record in sample_records() {
            wal.append(&record).expect("append");
        }
        drop(wal);
        let recovery = read_records(&dir).expect("read");
        assert_eq!(recovery.records, sample_records());
        assert!(recovery.torn.is_none());

        // Reopening recovers the same records and keeps appending.
        let (mut wal, recovery) = Wal::open(&dir, WalOptions::default()).expect("reopen");
        assert_eq!(recovery.records, sample_records());
        wal.append(&WalRecord::SlotClose { slot: 2 })
            .expect("append");
        drop(wal);
        assert_eq!(read_records(&dir).expect("read").records.len(), 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_detected_and_truncated() {
        let dir = temp_dir("torn");
        let (mut wal, _) = Wal::open(&dir, WalOptions::default()).expect("open");
        for record in sample_records() {
            wal.append(&record).expect("append");
        }
        drop(wal);
        let seg = segment_path(&dir, 1);
        let full = std::fs::read(&seg).expect("read segment");

        // Every possible mid-frame cut: the scan keeps the valid
        // prefix and reports the torn offset; reopening truncates.
        let frame_len = |payload: usize| 8 + payload;
        let sizes: Vec<usize> = sample_records()
            .iter()
            .map(|r| frame_len(r.encode_payload().len()))
            .collect();
        let offsets: Vec<usize> = sizes
            .iter()
            .scan(0, |acc, s| {
                *acc += s;
                Some(*acc)
            })
            .collect();
        for cut in 1..full.len() {
            std::fs::write(&seg, &full[..cut]).expect("truncate");
            let recovery = read_records(&dir).expect("scan");
            let valid = offsets.iter().filter(|&&end| end <= cut).count();
            assert_eq!(recovery.records.len(), valid, "cut at {cut}");
            if offsets.contains(&cut) {
                assert!(recovery.torn.is_none(), "cut at frame boundary {cut}");
            } else {
                let torn = recovery.torn.expect("mid-frame cut is torn");
                assert_eq!(
                    torn.offset as usize,
                    offsets[..valid].last().copied().unwrap_or(0)
                );
            }
        }

        // A flipped CRC bit invalidates exactly that frame onward.
        let mut flipped = full.clone();
        flipped[offsets[1] + 4] ^= 0x01; // CRC byte of the third frame
        std::fs::write(&seg, &flipped).expect("write");
        let recovery = read_records(&dir).expect("scan");
        assert_eq!(recovery.records.len(), 2);
        assert!(recovery.torn.expect("flip detected").reason.contains("CRC"));

        // A flipped payload bit likewise.
        let mut flipped = full.clone();
        flipped[offsets[0] + 8] ^= 0x80;
        std::fs::write(&seg, &flipped).expect("write");
        let recovery = read_records(&dir).expect("scan");
        assert_eq!(recovery.records.len(), 1);
        assert!(recovery.torn.is_some());

        // Opening truncates the torn tail durably: a second scan is
        // clean and the writer continues after the valid prefix.
        std::fs::write(&seg, &full[..offsets[2] + 3]).expect("tear");
        let (mut wal, recovery) = Wal::open(&dir, WalOptions::default()).expect("open");
        assert_eq!(recovery.records.len(), 3);
        assert!(recovery.torn.is_some());
        wal.append(&WalRecord::Arrivals {
            slot: 1,
            pairs: vec![(3, 9)],
        })
        .expect("append after truncation");
        drop(wal);
        let recovery = read_records(&dir).expect("rescan");
        assert!(recovery.torn.is_none());
        assert_eq!(recovery.records.len(), 4);
        assert_eq!(
            recovery.records[3],
            WalRecord::Arrivals {
                slot: 1,
                pairs: vec![(3, 9)],
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_in_a_non_last_segment_fails_loudly() {
        let dir = temp_dir("midcorrupt");
        let options = WalOptions {
            segment_bytes: 1, // rotate on every append
            ..WalOptions::default()
        };
        let (mut wal, _) = Wal::open(&dir, options).expect("open");
        for record in sample_records() {
            wal.append(&record).expect("append");
        }
        drop(wal);
        assert!(list_segments(&dir).expect("list").len() >= 2);
        let (_, first) = &list_segments(&dir).expect("list")[0];
        let mut bytes = std::fs::read(first).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(first, &bytes).expect("write");
        let err = read_records(&dir).unwrap_err();
        assert!(err.contains("not the last segment"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_and_checkpoint_gc() {
        let dir = temp_dir("gc");
        let options = WalOptions {
            segment_bytes: 64,
            ..WalOptions::default()
        };
        let (mut wal, _) = Wal::open(&dir, options).expect("open");
        for t in 0..20u64 {
            wal.append(&WalRecord::Arrivals {
                slot: t,
                pairs: vec![(0, t)],
            })
            .expect("append");
            wal.append(&WalRecord::SlotClose { slot: t })
                .expect("append");
        }
        assert!(
            list_segments(&dir).expect("list").len() > 1,
            "rotation happened"
        );
        wal.install_checkpoint(20).expect("install");
        let segments = list_segments(&dir).expect("list");
        assert_eq!(segments.len(), 1, "GC keeps only the fresh segment");
        drop(wal);
        let recovery = read_records(&dir).expect("read");
        assert_eq!(
            recovery.records,
            vec![WalRecord::CheckpointInstalled { slot: 20 }]
        );
        // Replay on the matching checkpoint: clean empty tail.
        let tail = replay(&recovery.records, 1, 20).expect("replay");
        assert!(tail.is_empty());
        // Replay on an *older* checkpoint: the gap is detected.
        let err = replay(&recovery.records, 1, 10).unwrap_err();
        assert!(err.contains("garbage-collected"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_rebuilds_slots_and_validates() {
        let records = vec![
            WalRecord::Arrivals {
                slot: 0,
                pairs: vec![(0, 5)],
            },
            WalRecord::SlotClose { slot: 0 },
            WalRecord::Arrivals {
                slot: 1,
                pairs: vec![(1, 2), (1, 3)],
            },
            WalRecord::SlotClose { slot: 1 },
            WalRecord::Arrivals {
                slot: 2,
                pairs: vec![(0, 1)],
            },
        ];
        let tail = replay(&records, 2, 0).expect("replay");
        assert_eq!(tail.closed, vec![vec![5, 0], vec![0, 5]]);
        assert_eq!(tail.open, vec![1, 0]);
        assert_eq!(tail.open_lines, 1);

        // A later start slot skips the covered prefix.
        let tail = replay(&records, 2, 1).expect("replay");
        assert_eq!(tail.closed, vec![vec![0, 5]]);
        assert_eq!(tail.open, vec![1, 0]);

        // A start slot past every record yields an empty tail.
        let tail = replay(&records, 2, 5).expect("replay");
        assert!(tail.is_empty());

        // Out-of-order slots and out-of-range edges are rejected.
        let bad = vec![WalRecord::Arrivals {
            slot: 1,
            pairs: vec![(0, 1)],
        }];
        assert!(replay(&bad, 2, 0).unwrap_err().contains("sequence broken"));
        let bad = vec![WalRecord::SlotClose { slot: 3 }];
        assert!(replay(&bad, 2, 0).unwrap_err().contains("sequence broken"));
        let bad = vec![WalRecord::Arrivals {
            slot: 0,
            pairs: vec![(7, 1)],
        }];
        assert!(replay(&bad, 2, 0).unwrap_err().contains("edge 7"));
    }

    /// A group-committed record (one `Arrivals` frame carrying a whole
    /// burst of request lines) replays with per-line accounting: the
    /// open slot's `open_lines` counts pairs, not frames, so a resumed
    /// daemon's `--slot-requests` trigger fires at the same line as
    /// one that never crashed.
    #[test]
    fn group_committed_arrivals_replay_per_line() {
        let records = vec![
            WalRecord::Arrivals {
                slot: 0,
                pairs: vec![(0, 2), (1, 1), (0, 4)],
            },
            WalRecord::Arrivals {
                slot: 0,
                pairs: vec![(1, 7)],
            },
        ];
        let tail = replay(&records, 2, 0).expect("replay");
        assert_eq!(tail.open, vec![6, 8]);
        assert_eq!(tail.open_lines, 4, "3 pairs + 1 pair = 4 request lines");

        // Closing the slot folds the batch identically to four
        // single-pair records — group commit changes framing only.
        let singles = vec![
            WalRecord::Arrivals {
                slot: 0,
                pairs: vec![(0, 2)],
            },
            WalRecord::Arrivals {
                slot: 0,
                pairs: vec![(1, 1)],
            },
            WalRecord::Arrivals {
                slot: 0,
                pairs: vec![(0, 4)],
            },
            WalRecord::Arrivals {
                slot: 0,
                pairs: vec![(1, 7)],
            },
        ];
        let equivalent = replay(&singles, 2, 0).expect("replay");
        assert_eq!(equivalent.open, tail.open);
        assert_eq!(equivalent.open_lines, tail.open_lines);
    }

    #[test]
    fn sync_policy_parses() {
        assert_eq!(
            "every".parse::<SyncPolicy>().expect("ok"),
            SyncPolicy::Every
        );
        assert_eq!("SLOT".parse::<SyncPolicy>().expect("ok"), SyncPolicy::Slot);
        assert_eq!("off".parse::<SyncPolicy>().expect("ok"), SyncPolicy::Off);
        assert!("sometimes".parse::<SyncPolicy>().is_err());
        assert_eq!(SyncPolicy::Slot.to_string(), "slot");
    }

    #[test]
    fn fresh_directory_detection() {
        let dir = temp_dir("fresh");
        assert!(!dir_has_segments(&dir));
        let (mut wal, _) = Wal::open(&dir, WalOptions::default()).expect("open");
        wal.append(&WalRecord::SlotClose { slot: 0 })
            .expect("append");
        assert!(dir_has_segments(&dir));
        std::fs::remove_dir_all(&dir).ok();
    }
}
