//! Versioned on-disk checkpoints for the streaming serve daemon.
//!
//! A checkpoint captures everything a `carbon-edge serve` process needs
//! to resume a run bit-identically after a restart: the raw arrival
//! counts ingested so far (replayed on resume to rebuild the stream
//! RNGs and workload statistics), the simulator's mutable run state
//! ([`StepperState`]), the controller's learned state (selector fleet
//! and trading policy, via
//! [`ComboController::export_state`](crate::ComboController::export_state)),
//! and the
//! mid-run telemetry trace. Everything derivable from the run's
//! configuration — topology, prices, fault schedule, block schedule,
//! trade backoff — is *not* stored; a resume rebuilds it from the same
//! seed and scenario flags and validates the cheap invariants recorded
//! in the checkpoint header.
//!
//! The format is a single JSON document produced by the repo's
//! canonical [`Json`] encoder, so `encode → parse → encode` is
//! byte-stable and checkpoints can be diffed and committed as test
//! fixtures. See `SERVING.md` for the operator-facing specification.

use std::path::Path;

use cne_edgesim::{EdgeServeState, ServeMode, SlotRecord, StepperState};
use cne_faults::TradeCarryParts;
use cne_market::LedgerParts;
use cne_util::json::Json;

use crate::crashpoint;

/// Fsyncs `path`'s parent directory so a completed rename survives
/// power loss (POSIX only persists the directory entry on dir fsync;
/// elsewhere this is a no-op).
fn sync_parent_dir(path: &Path) -> Result<(), String> {
    #[cfg(unix)]
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::File::open(parent)
            .and_then(|d| d.sync_all())
            .map_err(|e| format!("cannot fsync {}: {e}", parent.display()))?;
    }
    Ok(())
}

/// The `format` tag every checkpoint document carries.
pub const FORMAT: &str = "cne-checkpoint";

/// The current checkpoint format version. Readers accept exactly this
/// version: the format has no compatibility shims yet, and a version
/// bump means the run state's shape changed.
pub const VERSION: u64 = 1;

/// A complete serve-daemon checkpoint, taken between slots.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The run's root seed (the `--seed` of the original invocation).
    pub seed: u64,
    /// Policy display name (e.g. `"Ours"`); a resume must rebuild the
    /// same combo.
    pub policy: String,
    /// The serve mode the run was started with.
    pub serve_mode: ServeMode,
    /// Name of the fault scenario in effect, if any.
    pub fault_scenario: Option<String>,
    /// Horizon `T` of the run.
    pub horizon: usize,
    /// Number of edges `I`.
    pub num_edges: usize,
    /// Raw (pre-fault) arrival counts for every ingested slot,
    /// slot-major: `arrivals[t][i]` is edge `i`'s count in slot `t`.
    /// Replayed through `Environment::ingest_slot` on resume.
    pub arrivals: Vec<Vec<u64>>,
    /// The simulator's mutable run state (ledger, per-edge serve
    /// state, trade carry, completed slot records).
    pub stepper: StepperState,
    /// The controller's learned state, as exported by
    /// [`ComboController::export_state`](crate::ComboController::export_state).
    pub policy_state: Json,
    /// The mid-run telemetry trace (recorder JSONL), when the run was
    /// started with telemetry enabled.
    pub telemetry: Option<String>,
}

fn float(x: f64) -> Json {
    Json::Float(x)
}

fn uint(x: u64) -> Json {
    Json::UInt(x)
}

fn opt_uint(x: Option<u64>) -> Json {
    x.map_or(Json::Null, Json::UInt)
}

fn ledger_to_json(parts: &LedgerParts) -> Json {
    Json::Obj(vec![
        ("bought".to_owned(), float(parts.bought)),
        ("sold".to_owned(), float(parts.sold)),
        ("emitted".to_owned(), float(parts.emitted)),
        ("spent".to_owned(), float(parts.spent)),
        ("earned".to_owned(), float(parts.earned)),
    ])
}

fn carry_to_json(parts: &TradeCarryParts) -> Json {
    Json::Obj(vec![
        ("carry_buy".to_owned(), float(parts.carry_buy)),
        ("carry_sell".to_owned(), float(parts.carry_sell)),
        ("attempts".to_owned(), uint(u64::from(parts.attempts))),
        (
            "next_attempt_slot".to_owned(),
            uint(parts.next_attempt_slot),
        ),
        ("requested_buy".to_owned(), float(parts.requested_buy)),
        ("requested_sell".to_owned(), float(parts.requested_sell)),
    ])
}

fn edge_to_json(edge: &EdgeServeState) -> Json {
    Json::Obj(vec![
        (
            "prev_model".to_owned(),
            opt_uint(edge.prev_model.map(|n| n as u64)),
        ),
        (
            "pending_target".to_owned(),
            opt_uint(edge.pending_target.map(|n| n as u64)),
        ),
        (
            "pending_attempts".to_owned(),
            uint(u64::from(edge.pending_attempts)),
        ),
        (
            "pending_next_attempt_slot".to_owned(),
            uint(edge.pending_next_attempt_slot),
        ),
        (
            "pending_delayed_slots".to_owned(),
            uint(u64::from(edge.pending_delayed_slots)),
        ),
        ("switches".to_owned(), uint(edge.switches)),
        (
            "peak_utilization_millionths".to_owned(),
            uint(edge.peak_utilization_millionths),
        ),
        (
            "selection_counts".to_owned(),
            Json::Arr(edge.selection_counts.iter().map(|&c| uint(c)).collect()),
        ),
    ])
}

fn record_to_json(rec: &SlotRecord) -> Json {
    Json::Obj(vec![
        ("t".to_owned(), uint(rec.t as u64)),
        ("arrivals".to_owned(), uint(rec.arrivals)),
        ("loss_cost".to_owned(), float(rec.loss_cost)),
        ("latency_cost".to_owned(), float(rec.latency_cost)),
        ("switch_cost".to_owned(), float(rec.switch_cost)),
        ("trading_cost".to_owned(), float(rec.trading_cost)),
        ("switches".to_owned(), uint(rec.switches as u64)),
        ("emissions".to_owned(), float(rec.emissions)),
        ("bought".to_owned(), float(rec.bought)),
        ("sold".to_owned(), float(rec.sold)),
        ("buy_price".to_owned(), float(rec.buy_price)),
        ("sell_price".to_owned(), float(rec.sell_price)),
        ("trade_cash".to_owned(), float(rec.trade_cash)),
        ("accuracy".to_owned(), float(rec.accuracy)),
        ("empirical_loss".to_owned(), float(rec.empirical_loss)),
        ("utilization".to_owned(), float(rec.utilization)),
        ("queueing_delay_ms".to_owned(), float(rec.queueing_delay_ms)),
    ])
}

fn stepper_to_json(state: &StepperState) -> Json {
    Json::Obj(vec![
        ("next_slot".to_owned(), uint(state.next_slot as u64)),
        ("ledger".to_owned(), ledger_to_json(&state.ledger)),
        (
            "trade_carry".to_owned(),
            state.trade_carry.as_ref().map_or(Json::Null, carry_to_json),
        ),
        (
            "edges".to_owned(),
            Json::Arr(state.edges.iter().map(edge_to_json).collect()),
        ),
        (
            "records".to_owned(),
            Json::Arr(state.records.iter().map(record_to_json).collect()),
        ),
    ])
}

fn get<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("checkpoint is missing '{key}'"))
}

fn get_u64(obj: &Json, key: &str) -> Result<u64, String> {
    get(obj, key)?
        .as_u64()
        .ok_or_else(|| format!("'{key}' must be an unsigned integer"))
}

fn get_usize(obj: &Json, key: &str) -> Result<usize, String> {
    usize::try_from(get_u64(obj, key)?).map_err(|_| format!("'{key}' overflows usize"))
}

fn get_f64(obj: &Json, key: &str) -> Result<f64, String> {
    get(obj, key)?
        .as_f64()
        .ok_or_else(|| format!("'{key}' must be a number"))
}

fn get_str(obj: &Json, key: &str) -> Result<String, String> {
    Ok(get(obj, key)?
        .as_str()
        .ok_or_else(|| format!("'{key}' must be a string"))?
        .to_owned())
}

fn get_arr<'a>(obj: &'a Json, key: &str) -> Result<&'a [Json], String> {
    get(obj, key)?
        .as_array()
        .ok_or_else(|| format!("'{key}' must be an array"))
}

fn get_opt_u64(obj: &Json, key: &str) -> Result<Option<u64>, String> {
    let value = get(obj, key)?;
    if value.is_null() {
        return Ok(None);
    }
    value
        .as_u64()
        .map(Some)
        .ok_or_else(|| format!("'{key}' must be null or an unsigned integer"))
}

fn ledger_from_json(value: &Json) -> Result<LedgerParts, String> {
    Ok(LedgerParts {
        bought: get_f64(value, "bought")?,
        sold: get_f64(value, "sold")?,
        emitted: get_f64(value, "emitted")?,
        spent: get_f64(value, "spent")?,
        earned: get_f64(value, "earned")?,
    })
}

fn carry_from_json(value: &Json) -> Result<TradeCarryParts, String> {
    Ok(TradeCarryParts {
        carry_buy: get_f64(value, "carry_buy")?,
        carry_sell: get_f64(value, "carry_sell")?,
        attempts: u32::try_from(get_u64(value, "attempts")?)
            .map_err(|_| "'attempts' overflows u32".to_owned())?,
        next_attempt_slot: get_u64(value, "next_attempt_slot")?,
        requested_buy: get_f64(value, "requested_buy")?,
        requested_sell: get_f64(value, "requested_sell")?,
    })
}

fn edge_from_json(value: &Json) -> Result<EdgeServeState, String> {
    let counts = get_arr(value, "selection_counts")?
        .iter()
        .map(|c| {
            c.as_u64()
                .ok_or_else(|| "selection counts must be unsigned integers".to_owned())
        })
        .collect::<Result<Vec<u64>, String>>()?;
    Ok(EdgeServeState {
        prev_model: get_opt_u64(value, "prev_model")?.map(|n| n as usize),
        pending_target: get_opt_u64(value, "pending_target")?.map(|n| n as usize),
        pending_attempts: u32::try_from(get_u64(value, "pending_attempts")?)
            .map_err(|_| "'pending_attempts' overflows u32".to_owned())?,
        pending_next_attempt_slot: get_u64(value, "pending_next_attempt_slot")?,
        pending_delayed_slots: u32::try_from(get_u64(value, "pending_delayed_slots")?)
            .map_err(|_| "'pending_delayed_slots' overflows u32".to_owned())?,
        switches: get_u64(value, "switches")?,
        peak_utilization_millionths: get_u64(value, "peak_utilization_millionths")?,
        selection_counts: counts,
    })
}

fn record_from_json(value: &Json) -> Result<SlotRecord, String> {
    Ok(SlotRecord {
        t: get_usize(value, "t")?,
        arrivals: get_u64(value, "arrivals")?,
        loss_cost: get_f64(value, "loss_cost")?,
        latency_cost: get_f64(value, "latency_cost")?,
        switch_cost: get_f64(value, "switch_cost")?,
        trading_cost: get_f64(value, "trading_cost")?,
        switches: get_usize(value, "switches")?,
        emissions: get_f64(value, "emissions")?,
        bought: get_f64(value, "bought")?,
        sold: get_f64(value, "sold")?,
        buy_price: get_f64(value, "buy_price")?,
        sell_price: get_f64(value, "sell_price")?,
        trade_cash: get_f64(value, "trade_cash")?,
        accuracy: get_f64(value, "accuracy")?,
        empirical_loss: get_f64(value, "empirical_loss")?,
        utilization: get_f64(value, "utilization")?,
        queueing_delay_ms: get_f64(value, "queueing_delay_ms")?,
    })
}

fn stepper_from_json(value: &Json) -> Result<StepperState, String> {
    let carry = get(value, "trade_carry")?;
    Ok(StepperState {
        next_slot: get_usize(value, "next_slot")?,
        ledger: ledger_from_json(get(value, "ledger")?)?,
        trade_carry: if carry.is_null() {
            None
        } else {
            Some(carry_from_json(carry)?)
        },
        edges: get_arr(value, "edges")?
            .iter()
            .map(edge_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        records: get_arr(value, "records")?
            .iter()
            .map(record_from_json)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

fn serve_mode_name(mode: ServeMode) -> &'static str {
    match mode {
        ServeMode::Batched => "batched",
        ServeMode::PerRequest => "per-request",
    }
}

fn serve_mode_from_name(name: &str) -> Result<ServeMode, String> {
    match name {
        "batched" => Ok(ServeMode::Batched),
        "per-request" => Ok(ServeMode::PerRequest),
        other => Err(format!("unknown serve mode '{other}'")),
    }
}

impl Checkpoint {
    /// Encodes the checkpoint as its canonical JSON document (with a
    /// trailing newline). Encoding is byte-stable under
    /// `encode → parse → encode`.
    #[must_use]
    pub fn encode(&self) -> String {
        let meta = Json::Obj(vec![
            ("seed".to_owned(), uint(self.seed)),
            ("policy".to_owned(), Json::Str(self.policy.clone())),
            (
                "serve_mode".to_owned(),
                Json::Str(serve_mode_name(self.serve_mode).to_owned()),
            ),
            (
                "fault_scenario".to_owned(),
                self.fault_scenario
                    .as_ref()
                    .map_or(Json::Null, |name| Json::Str(name.clone())),
            ),
            ("horizon".to_owned(), uint(self.horizon as u64)),
            ("num_edges".to_owned(), uint(self.num_edges as u64)),
        ]);
        let arrivals = Json::Arr(
            self.arrivals
                .iter()
                .map(|row| Json::Arr(row.iter().map(|&c| uint(c)).collect()))
                .collect(),
        );
        let doc = Json::Obj(vec![
            ("format".to_owned(), Json::Str(FORMAT.to_owned())),
            ("version".to_owned(), uint(VERSION)),
            ("meta".to_owned(), meta),
            ("slot".to_owned(), uint(self.stepper.next_slot as u64)),
            ("arrivals".to_owned(), arrivals),
            ("stepper".to_owned(), stepper_to_json(&self.stepper)),
            ("policy_state".to_owned(), self.policy_state.clone()),
            (
                "telemetry".to_owned(),
                self.telemetry
                    .as_ref()
                    .map_or(Json::Null, |text| Json::Str(text.clone())),
            ),
        ]);
        let mut text = doc.encode();
        text.push('\n');
        text
    }

    /// Parses a checkpoint document, validating the format tag,
    /// version, and internal consistency (slot counter vs. arrivals
    /// vs. completed records, per-slot edge counts).
    ///
    /// # Errors
    /// Returns a human-readable message when the document is not a
    /// well-formed version-[`VERSION`] checkpoint.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = cne_util::json::parse(text)
            .map_err(|e| format!("checkpoint is not valid JSON: {e}"))?;
        let format = get_str(&doc, "format")?;
        if format != FORMAT {
            return Err(format!(
                "not a checkpoint file (format tag '{format}', expected '{FORMAT}')"
            ));
        }
        let version = get_u64(&doc, "version")?;
        if version != VERSION {
            return Err(format!(
                "checkpoint version {version} is not supported (this build reads version {VERSION})"
            ));
        }
        let meta = get(&doc, "meta")?;
        let fault_scenario = {
            let value = get(meta, "fault_scenario")?;
            if value.is_null() {
                None
            } else {
                Some(
                    value
                        .as_str()
                        .ok_or("'fault_scenario' must be null or a string")?
                        .to_owned(),
                )
            }
        };
        let num_edges = get_usize(meta, "num_edges")?;
        let slot = get_usize(&doc, "slot")?;
        let stepper = stepper_from_json(get(&doc, "stepper")?)?;
        if stepper.next_slot != slot {
            return Err(format!(
                "corrupt checkpoint: header says slot {slot} but the run state is at slot {}",
                stepper.next_slot
            ));
        }
        let mut arrivals = Vec::new();
        for (t, row) in get_arr(&doc, "arrivals")?.iter().enumerate() {
            let row = row
                .as_array()
                .ok_or("'arrivals' must be an array of per-slot arrays")?;
            if row.len() != num_edges {
                return Err(format!(
                    "arrivals row {t} has {} entries but the run has {num_edges} edges",
                    row.len()
                ));
            }
            arrivals.push(
                row.iter()
                    .map(|c| {
                        c.as_u64()
                            .ok_or_else(|| "arrival counts must be unsigned integers".to_owned())
                    })
                    .collect::<Result<Vec<u64>, String>>()?,
            );
        }
        if arrivals.len() != slot {
            return Err(format!(
                "checkpoint at slot {slot} must carry exactly {slot} ingested arrival rows, \
                 found {}",
                arrivals.len()
            ));
        }
        let telemetry = {
            let value = get(&doc, "telemetry")?;
            if value.is_null() {
                None
            } else {
                Some(
                    value
                        .as_str()
                        .ok_or("'telemetry' must be null or a string")?
                        .to_owned(),
                )
            }
        };
        Ok(Self {
            seed: get_u64(meta, "seed")?,
            policy: get_str(meta, "policy")?,
            serve_mode: serve_mode_from_name(&get_str(meta, "serve_mode")?)?,
            fault_scenario,
            horizon: get_usize(meta, "horizon")?,
            num_edges,
            arrivals,
            stepper,
            policy_state: get(&doc, "policy_state")?.clone(),
            telemetry,
        })
    }

    /// Writes the checkpoint to `path` atomically **and durably**: the
    /// sibling temporary file is fsynced before the rename, and the
    /// parent directory is fsynced after it, so a crash — including
    /// power loss — leaves either the old checkpoint or the new one,
    /// never a truncated or unlinked in-between.
    ///
    /// # Errors
    /// Returns a message naming the path on any I/O failure.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        use std::io::Write as _;

        let tmp = path.with_extension("tmp");
        let encoded = self.encode().into_bytes();
        let mut file = std::fs::File::create(&tmp)
            .map_err(|e| format!("cannot create {}: {e}", tmp.display()))?;
        if crashpoint::hit_auto("ckpt-torn-tmp") {
            // Chaos drill: die with a half-written tmp file on disk.
            // Recovery must ignore it (the rename never happened).
            let _ = file.write_all(&encoded[..encoded.len() / 2]);
            let _ = file.sync_all();
            crashpoint::crash("ckpt-torn-tmp");
        }
        file.write_all(&encoded)
            .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        // An atomic rename only helps if the *contents* are already on
        // disk: rename durability does not imply data durability.
        file.sync_all()
            .map_err(|e| format!("cannot fsync {}: {e}", tmp.display()))?;
        drop(file);
        if crashpoint::hit_auto("ckpt-pre-rename") {
            // Chaos drill: full tmp on disk, old checkpoint still in
            // place. Recovery must use the old checkpoint + WAL tail.
            crashpoint::crash("ckpt-pre-rename");
        }
        std::fs::rename(&tmp, path)
            .map_err(|e| format!("cannot move checkpoint into {}: {e}", path.display()))?;
        sync_parent_dir(path)
    }

    /// Reads and parses a checkpoint from `path`.
    ///
    /// # Errors
    /// Returns a message naming the path on I/O or parse failure.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            seed: 42,
            policy: "Ours".to_owned(),
            serve_mode: ServeMode::Batched,
            fault_scenario: Some("mixed-20".to_owned()),
            horizon: 8,
            num_edges: 2,
            arrivals: vec![vec![3, 0], vec![7, 5]],
            stepper: StepperState {
                next_slot: 2,
                ledger: LedgerParts {
                    bought: 1.5,
                    sold: 0.0,
                    emitted: 2.25,
                    spent: 12.0,
                    earned: 0.0,
                },
                trade_carry: Some(TradeCarryParts {
                    carry_buy: 0.5,
                    carry_sell: 0.0,
                    attempts: 1,
                    next_attempt_slot: 3,
                    requested_buy: 1.0,
                    requested_sell: 0.0,
                }),
                edges: vec![
                    EdgeServeState {
                        prev_model: Some(1),
                        pending_target: None,
                        pending_attempts: 0,
                        pending_next_attempt_slot: 0,
                        pending_delayed_slots: 0,
                        switches: 1,
                        peak_utilization_millionths: 350_000,
                        selection_counts: vec![0, 2, 0],
                    },
                    EdgeServeState {
                        prev_model: None,
                        pending_target: Some(2),
                        pending_attempts: 2,
                        pending_next_attempt_slot: 4,
                        pending_delayed_slots: 2,
                        switches: 0,
                        peak_utilization_millionths: 0,
                        selection_counts: vec![1, 0, 1],
                    },
                ],
                records: vec![
                    SlotRecord {
                        t: 0,
                        arrivals: 3,
                        loss_cost: 0.25,
                        latency_cost: 0.125,
                        switch_cost: 1.0,
                        trading_cost: -0.5,
                        switches: 1,
                        emissions: 0.75,
                        bought: 1.0,
                        sold: 0.0,
                        buy_price: 8.4,
                        sell_price: 7.2,
                        trade_cash: 8.4,
                        accuracy: 0.9,
                        empirical_loss: 0.1,
                        utilization: 0.35,
                        queueing_delay_ms: 1.5,
                    },
                    SlotRecord {
                        t: 1,
                        arrivals: 12,
                        loss_cost: 0.5,
                        latency_cost: 0.25,
                        switch_cost: 0.0,
                        trading_cost: 0.0,
                        switches: 0,
                        emissions: 1.5,
                        bought: 0.0,
                        sold: 0.0,
                        buy_price: 8.0,
                        sell_price: 7.0,
                        trade_cash: 0.0,
                        accuracy: 0.85,
                        empirical_loss: 0.15,
                        utilization: 0.6,
                        queueing_delay_ms: 2.0,
                    },
                ],
            },
            policy_state: Json::Obj(vec![(
                "kind".to_owned(),
                Json::Str("combo-controller".to_owned()),
            )]),
            telemetry: None,
        }
    }

    #[test]
    fn encode_parse_encode_is_byte_stable() {
        let ckpt = sample();
        let text = ckpt.encode();
        let parsed = Checkpoint::parse(&text).expect("round trip");
        assert_eq!(parsed, ckpt);
        assert_eq!(parsed.encode(), text, "re-encode must be byte-identical");
    }

    #[test]
    fn parse_rejects_foreign_and_corrupt_documents() {
        assert!(Checkpoint::parse("{}").unwrap_err().contains("format"));
        assert!(Checkpoint::parse("not json").unwrap_err().contains("JSON"));
        let wrong_format = r#"{"format": "other", "version": 1}"#;
        assert!(Checkpoint::parse(wrong_format)
            .unwrap_err()
            .contains("not a checkpoint file"));

        let ckpt = sample();
        let future = ckpt.encode().replace("\"version\":1", "\"version\":99");
        assert!(Checkpoint::parse(&future)
            .unwrap_err()
            .contains("version 99 is not supported"));

        // Header slot counter disagreeing with the run state.
        let skewed = ckpt.encode().replacen("\"slot\":2", "\"slot\":3", 1);
        assert!(Checkpoint::parse(&skewed)
            .unwrap_err()
            .contains("corrupt checkpoint"));

        // Fewer arrival rows than ingested slots.
        let mut short = ckpt.clone();
        short.arrivals.pop();
        let text = short.encode();
        assert!(Checkpoint::parse(&text)
            .unwrap_err()
            .contains("arrival rows"));

        // Ragged arrivals.
        let mut ragged = ckpt;
        ragged.arrivals[1].pop();
        let text = ragged.encode();
        assert!(Checkpoint::parse(&text).unwrap_err().contains("entries"));
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("cne-checkpoint-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("ckpt.json");
        let ckpt = sample();
        ckpt.save(&path).expect("save");
        let loaded = Checkpoint::load(&path).expect("load");
        assert_eq!(loaded, ckpt);
        std::fs::remove_file(&path).ok();
        assert!(Checkpoint::load(&path).unwrap_err().contains("cannot read"));
    }
}
