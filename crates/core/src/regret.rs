//! Regret and fit computation (Theorems 1–3, empirically).
//!
//! * **P1 regret** (per edge): expected inference cost of the pulled
//!   models versus the single best model at hindsight, evaluated with
//!   the pool expectations — exactly the `Reg_{1,i}^T` of Theorem 1,
//!   with the realized switching cost available separately.
//! * **P2 regret**: the trading objective versus the sequence of
//!   one-shot optima `Z̄^{t*} ∈ argmin f^t s.t. g^t(Z) ≤ 0` (Theorem 2).
//! * **Fit**: the positive part of the accumulated constraint,
//!   `‖[Σ_t g^t]⁺‖` (Theorem 2).
//! * **P0 regret**: realized total cost versus the offline benchmark
//!   (Theorem 3's quantity, with `Offline` standing in for `P*`).

use cne_edgesim::{Environment, RunRecord};

/// Per-edge P1 regret: `Σ_n counts_{i,n} κ_{i,n} − T · min_n κ_{i,n}`
/// where `κ_{i,n} = E[l_n] w_loss + v_{i,n} w_latency`.
#[must_use]
pub fn p1_regret_per_edge(env: &Environment<'_>, record: &RunRecord) -> Vec<f64> {
    let cfg = env.config();
    let zoo = env.zoo();
    record
        .edges
        .iter()
        .enumerate()
        .map(|(i, edge)| {
            let costs: Vec<f64> = (0..zoo.len())
                .map(|n| {
                    zoo.model(n).eval.expected_loss() * cfg.weights.loss
                        + env.latency_ms(i, n) * cfg.weights.latency_per_ms
                })
                .collect();
            let best = costs.iter().copied().fold(f64::INFINITY, f64::min);
            let incurred: f64 = edge
                .selection_counts
                .iter()
                .zip(&costs)
                .map(|(&cnt, &c)| cnt as f64 * c)
                .sum();
            incurred - record.horizon() as f64 * best
        })
        .collect()
}

/// Total P1 regret plus realized switching cost (the left-hand side of
/// Theorem 1 summed over edges, in weighted cost units).
#[must_use]
pub fn p1_regret_with_switching(env: &Environment<'_>, record: &RunRecord) -> f64 {
    let per_edge: f64 = p1_regret_per_edge(env, record).iter().sum();
    let switching: f64 = record.slots.iter().map(|s| s.switch_cost).sum();
    per_edge + switching
}

/// The sequence of one-shot trading optima `f^t(Z̄^{t*})` for the
/// emissions the record realized: cover any slot deficit at the slot's
/// buy price (up to the buy bound), sell any slot surplus at the slot's
/// sell price (up to the sell bound).
#[must_use]
pub fn p2_oneshot_optima(record: &RunRecord, max_buy: f64, max_sell: f64) -> Vec<f64> {
    record
        .slots
        .iter()
        .map(|s| {
            let imbalance = s.emissions - record.cap_share;
            if imbalance >= 0.0 {
                imbalance.min(max_buy) * s.buy_price
            } else {
                -(-imbalance).min(max_sell) * s.sell_price
            }
        })
        .collect()
}

/// P2 regret: realized trading cash flow minus the one-shot optima sum.
#[must_use]
pub fn p2_regret(record: &RunRecord, max_buy: f64, max_sell: f64) -> f64 {
    let realized: f64 = record.slots.iter().map(|s| s.trade_cash).sum();
    let oneshot: f64 = p2_oneshot_optima(record, max_buy, max_sell).iter().sum();
    realized - oneshot
}

/// Fit: `[Σ_t g^t]⁺` at the horizon, in allowances.
#[must_use]
pub fn fit(record: &RunRecord) -> f64 {
    let total_g: f64 = record
        .slots
        .iter()
        .map(|s| s.constraint_value(record.cap_share))
        .sum();
    total_g.max(0.0)
}

/// P0 regret: realized weighted total cost minus the offline
/// benchmark's.
#[must_use]
pub fn p0_regret(record: &RunRecord, offline: &RunRecord) -> f64 {
    record.total_cost() - offline.total_cost()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combos::Combo;
    use crate::offline::OfflinePolicy;
    use cne_edgesim::SimConfig;
    use cne_nn::{ModelZoo, ZooConfig};
    use cne_simdata::dataset::TaskKind;
    use cne_util::SeedSequence;

    fn setup() -> (ModelZoo, SimConfig) {
        let zoo = ModelZoo::train(
            TaskKind::MnistLike,
            &ZooConfig::fast(),
            &SeedSequence::new(9),
        );
        (zoo, SimConfig::fast_test(TaskKind::MnistLike))
    }

    #[test]
    fn offline_p1_regret_is_zero() {
        let (zoo, cfg) = setup();
        let env = Environment::new(cfg, &zoo, &SeedSequence::new(10));
        let mut offline = OfflinePolicy::plan(&env);
        let record = env.run(&mut offline);
        for r in p1_regret_per_edge(&env, &record) {
            assert!(
                r.abs() < 1e-9,
                "offline plays the best fixed model; regret {r}"
            );
        }
    }

    #[test]
    fn offline_fit_is_zero() {
        let (zoo, cfg) = setup();
        let env = Environment::new(cfg, &zoo, &SeedSequence::new(11));
        let mut offline = OfflinePolicy::plan(&env);
        let record = env.run(&mut offline);
        assert!(fit(&record) < 1e-6, "offline fit {}", fit(&record));
    }

    #[test]
    fn random_selector_has_positive_regret() {
        let (zoo, cfg) = setup();
        let env = Environment::new(cfg, &zoo, &SeedSequence::new(12));
        let combo = Combo {
            selector: crate::combos::SelectorKind::Random,
            trader: crate::combos::TraderKind::PrimalDual,
        };
        let mut policy = combo.build(&env, &SeedSequence::new(13));
        let record = env.run(&mut policy);
        let total: f64 = p1_regret_per_edge(&env, &record).iter().sum();
        assert!(total > 0.0, "random selection must incur P1 regret");
    }

    #[test]
    fn oneshot_optima_cover_or_sell() {
        let (zoo, cfg) = setup();
        let max_buy = cfg.bounds.max_buy.get();
        let max_sell = cfg.bounds.max_sell.get();
        let env = Environment::new(cfg, &zoo, &SeedSequence::new(14));
        let mut offline = OfflinePolicy::plan(&env);
        let record = env.run(&mut offline);
        let optima = p2_oneshot_optima(&record, max_buy, max_sell);
        for (s, &f) in record.slots.iter().zip(&optima) {
            if s.emissions > record.cap_share {
                assert!(f >= 0.0, "deficit slots cost money");
            } else {
                assert!(f <= 0.0, "surplus slots earn money");
            }
        }
    }

    #[test]
    fn p0_regret_signs() {
        let (zoo, cfg) = setup();
        let env = Environment::new(cfg, &zoo, &SeedSequence::new(15));
        let mut offline = OfflinePolicy::plan(&env);
        let off_record = env.run(&mut offline);
        assert_eq!(p0_regret(&off_record, &off_record), 0.0);
    }
}
