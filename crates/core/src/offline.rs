//! The clairvoyant `Offline` benchmark.
//!
//! Following §V-A: Offline (i) keeps, on each edge, the single model
//! minimizing the posterior expected inference cost
//! `E[l_n] · w_loss + v_{i,n} · w_latency` (sample mean over the whole
//! test pool approximating the unknown expectation), and (ii) solves
//! the carbon-trading subproblem exactly with the offline LP, knowing
//! the entire price series and the emissions its fixed placement will
//! produce (the paper uses Gurobi; we use the exact parametric greedy
//! of `cne-trading`).

use cne_edgesim::policy::{Policy, SlotFeedback};
use cne_edgesim::Environment;
use cne_trading::offline::offline_optimal_trades;
use cne_trading::policy::TradeContext;
use cne_util::units::Allowances;

/// The offline oracle policy.
#[derive(Debug, Clone)]
pub struct OfflinePolicy {
    placements: Vec<usize>,
    buys: Vec<f64>,
    sells: Vec<f64>,
}

impl OfflinePolicy {
    /// Plans the oracle for a realized environment.
    ///
    /// When even buying the per-slot maximum every slot cannot cover
    /// the placement's emissions (possible in the extreme Fig. 6
    /// emission-rate sweeps), the oracle degrades gracefully to the
    /// best feasible plan — buy the maximum every slot, sell nothing —
    /// and pays the unavoidable compliance settlement like everyone
    /// else.
    #[must_use]
    pub fn plan(env: &Environment<'_>) -> Self {
        let cfg = env.config();
        let zoo = env.zoo();
        // Best fixed model per edge by expected inference cost.
        let placements: Vec<usize> = (0..env.num_edges())
            .map(|i| {
                let mut best = 0usize;
                let mut best_cost = f64::INFINITY;
                for n in 0..zoo.len() {
                    let cost = zoo.model(n).eval.expected_loss() * cfg.weights.loss
                        + env.latency_ms(i, n) * cfg.weights.latency_per_ms;
                    if cost < best_cost {
                        best_cost = cost;
                        best = n;
                    }
                }
                best
            })
            .collect();

        // Exact emissions of this placement: per-edge inference energy
        // over the realized workload plus one initial download.
        let mut total_grams = 0.0;
        for (i, &n) in placements.iter().enumerate() {
            let profile = &zoo.model(n).profile;
            for t in 0..env.horizon() {
                let arrivals = env.workload(i).arrivals(t);
                total_grams += cfg
                    .emission
                    .slot_emissions(
                        profile.energy_per_sample,
                        arrivals,
                        t == 0,
                        env.topology().transfer_energy(i),
                        profile.size,
                    )
                    .get();
            }
        }
        let deficit = total_grams / 1000.0 - cfg.cap.get();

        let buy: Vec<f64> = env.prices().buy_series().iter().map(|p| p.get()).collect();
        let sell: Vec<f64> = env.prices().sell_series().iter().map(|p| p.get()).collect();
        match offline_optimal_trades(
            &buy,
            &sell,
            deficit,
            cfg.bounds.max_buy.get(),
            cfg.bounds.max_sell.get(),
        ) {
            Ok(plan) => Self {
                placements,
                buys: plan.buys,
                sells: plan.sells,
            },
            Err(_) => Self {
                placements,
                buys: vec![cfg.bounds.max_buy.get(); env.horizon()],
                sells: vec![0.0; env.horizon()],
            },
        }
    }

    /// The fixed placement (model per edge).
    #[must_use]
    pub fn placements(&self) -> &[usize] {
        &self.placements
    }
}

impl Policy for OfflinePolicy {
    fn select_models(&mut self, _t: usize) -> Vec<usize> {
        self.placements.clone()
    }

    fn decide_trades(&mut self, t: usize, _ctx: &TradeContext) -> (Allowances, Allowances) {
        (
            Allowances::new(self.buys[t]),
            Allowances::new(self.sells[t]),
        )
    }

    fn end_of_slot(&mut self, _t: usize, _feedback: &SlotFeedback) {}

    fn name(&self) -> String {
        "Offline".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cne_edgesim::SimConfig;
    use cne_nn::{ModelZoo, ZooConfig};
    use cne_simdata::dataset::TaskKind;
    use cne_util::SeedSequence;

    fn setup() -> (ModelZoo, SimConfig) {
        let zoo = ModelZoo::train(
            TaskKind::MnistLike,
            &ZooConfig::fast(),
            &SeedSequence::new(5),
        );
        (zoo, SimConfig::fast_test(TaskKind::MnistLike))
    }

    #[test]
    fn offline_is_neutral_and_never_switches_after_start() {
        let (zoo, cfg) = setup();
        let env = Environment::new(cfg, &zoo, &SeedSequence::new(6));
        let mut offline = OfflinePolicy::plan(&env);
        let record = env.run(&mut offline);
        // One initial download per edge, none after.
        assert_eq!(record.total_switches() as usize, env.num_edges());
        // Fully covered emissions (constraint (1c) holds exactly).
        assert!(
            record.ledger.is_neutral(),
            "offline must satisfy neutrality; violation {}",
            record.violation()
        );
    }

    #[test]
    fn offline_placement_minimizes_expected_cost() {
        let (zoo, cfg) = setup();
        let weights = cfg.weights;
        let env = Environment::new(cfg, &zoo, &SeedSequence::new(7));
        let offline = OfflinePolicy::plan(&env);
        for (i, &chosen) in offline.placements().iter().enumerate() {
            let cost = |n: usize| {
                zoo.model(n).eval.expected_loss() * weights.loss
                    + env.latency_ms(i, n) * weights.latency_per_ms
            };
            for n in 0..zoo.len() {
                assert!(
                    cost(chosen) <= cost(n) + 1e-12,
                    "edge {i}: model {chosen} not optimal vs {n}"
                );
            }
        }
    }

    #[test]
    fn offline_beats_every_fixed_suboptimal_trading() {
        // Offline's trading cost must not exceed the trivial plan that
        // buys the deficit uniformly.
        let (zoo, cfg) = setup();
        let env = Environment::new(cfg, &zoo, &SeedSequence::new(8));
        let mut offline = OfflinePolicy::plan(&env);
        let record = env.run(&mut offline);
        let deficit = record.ledger.emitted().to_allowances().get() - env.config().cap.get();
        if deficit > 0.0 {
            // Uniform plan cost at average buy price.
            let avg_price: f64 =
                record.slots.iter().map(|s| s.buy_price).sum::<f64>() / record.horizon() as f64;
            let uniform_cost = deficit * avg_price;
            let offline_cash: f64 = record.slots.iter().map(|s| s.trade_cash).sum();
            assert!(
                offline_cash <= uniform_cost + 1e-6,
                "offline trading ({offline_cash}) worse than uniform ({uniform_cost})"
            );
        }
    }
}
