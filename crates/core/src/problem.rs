//! Shared cost scales: mapping the raw slot observations onto the
//! normalized per-slot losses the bandit layer consumes.
//!
//! The bandit analysis (and Tsallis-INF practice) assumes per-round
//! losses in roughly `[0, 1]`. A slot's raw inference cost on edge `i`
//! is `L_{i,n}^t · w_loss + v_{i,n} · w_latency` where the Brier loss
//! `L ∈ [0, 2]` and `v ∈ [25, 150]` ms, so dividing by
//! `2 w_loss + 150 w_latency` lands in `(0, 1]`. The switching cost is
//! mapped onto the same unit so the block schedule's `u` parameter (in
//! per-slot loss units) is commensurate.

use cne_edgesim::CostWeights;

/// Maximum Brier loss of a probability vector vs. a one-hot label.
pub const MAX_BRIER: f64 = 2.0;

/// Maximum computation latency in the paper's band (ms).
pub const MAX_LATENCY_MS: f64 = 150.0;

/// Ratio between the worst-case slot cost and the *reference scale*
/// the bandit losses are normalized by.
///
/// Normalizing by the worst case (`2 w_loss + 150 w_lat`) would crush
/// the gaps between realistic models (whose Brier losses live far from
/// the 2.0 worst case) to the point where no learner can resolve them
/// within the paper's 160-slot horizon. We instead normalize by a
/// reference scale of 1/12 of the worst case — roughly the spread of
/// actually-trained model costs — so near-tied models still produce a
/// usable signal. Normalized losses may therefore exceed 1 for
/// pathologically bad models; Tsallis-INF only requires finite losses.
pub const SIGNAL_FACTOR: f64 = 12.0;

/// Maps raw slot costs onto the reference loss scale the bandit
/// layer consumes (≈ `[0, 1]` for realistic models).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossNormalizer {
    weights: CostWeights,
    scale: f64,
}

impl LossNormalizer {
    /// Builds a normalizer for the given cost weights.
    #[must_use]
    pub fn new(weights: CostWeights) -> Self {
        let scale =
            (MAX_BRIER * weights.loss + MAX_LATENCY_MS * weights.latency_per_ms) / SIGNAL_FACTOR;
        assert!(scale > 0.0, "degenerate cost weights");
        Self { weights, scale }
    }

    /// The normalization constant `2 w_loss + 150 w_latency`.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Normalized slot loss from an empirical Brier loss and a
    /// computation latency.
    ///
    /// # Examples
    /// ```
    /// use cne_core::problem::{LossNormalizer, SIGNAL_FACTOR};
    /// use cne_edgesim::CostWeights;
    ///
    /// let norm = LossNormalizer::new(CostWeights::default());
    /// let worst = norm.slot_loss(2.0, 150.0);
    /// assert!((worst - SIGNAL_FACTOR).abs() < 1e-9);
    /// assert!(norm.slot_loss(0.1, 30.0) < worst);
    /// ```
    #[must_use]
    pub fn slot_loss(&self, brier: f64, latency_ms: f64) -> f64 {
        (brier * self.weights.loss + latency_ms * self.weights.latency_per_ms) / self.scale
    }

    /// The switching cost `u_i` expressed in normalized per-slot loss
    /// units (feeds the block schedule of Theorem 1).
    #[must_use]
    pub fn switch_cost(&self, download_delay_ms: f64, switch_weight: f64) -> f64 {
        download_delay_ms * self.weights.switch_per_ms * switch_weight / self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale() {
        let n = LossNormalizer::new(CostWeights::default());
        // (2·3 + 150/600) / 12 = 0.52083…
        assert!((n.scale() - 6.25 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn losses_bounded_by_signal_factor() {
        let n = LossNormalizer::new(CostWeights::default());
        for brier in [0.0, 0.5, 1.0, 2.0] {
            for v in [25.0, 80.0, 150.0] {
                let l = n.slot_loss(brier, v);
                assert!(
                    (0.0..=SIGNAL_FACTOR + 1e-12).contains(&l),
                    "loss {l} out of range"
                );
            }
        }
        // Realistic models (Brier ≲ 0.5) stay near the unit scale.
        assert!(n.slot_loss(0.5, 80.0) < 4.0);
    }

    #[test]
    fn switch_cost_scales_with_weight() {
        let n = LossNormalizer::new(CostWeights::default());
        let base = n.switch_cost(100.0, 1.0);
        let heavy = n.switch_cost(100.0, 4.0);
        assert!((heavy - 4.0 * base).abs() < 1e-12);
        assert!(base > 0.0);
    }
}
