//! Deterministic crash injection for the chaos harness.
//!
//! The crash harness (`crates/cli/tests/crash_harness.rs`, and the CI
//! `chaos-smoke` job) needs to kill the daemon at points an external
//! `SIGKILL` cannot reliably hit — half-way through a WAL append, with
//! a half-written checkpoint tmp file, after the checkpoint is written
//! but before the rename. Those sites consult this module: when the
//! `CARBON_EDGE_CRASH` environment variable is set to `point:N`, the
//! `N`-th occurrence of `point` persists a deliberately torn artifact
//! and aborts the process without unwinding — exactly what a kernel
//! kill at that instant would leave behind.
//!
//! Recognized points:
//!
//! | point | effect at occurrence `N` |
//! |---|---|
//! | `wal-torn-append` | writes a prefix of the frame, then aborts |
//! | `ckpt-torn-tmp` | writes a prefix of the checkpoint tmp, then aborts |
//! | `ckpt-pre-rename` | writes + fsyncs the full tmp, aborts before rename |
//!
//! When the variable is unset (every production run), the fast path is
//! a single relaxed atomic load of a cached parse — no environment
//! lookup, no branching on strings.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Environment variable holding the armed crash point, as `point:N`
/// (1-based occurrence count).
pub const ENV_VAR: &str = "CARBON_EDGE_CRASH";

/// The parsed spec, cached for the process lifetime.
fn spec() -> Option<&'static (String, u64)> {
    static SPEC: OnceLock<Option<(String, u64)>> = OnceLock::new();
    SPEC.get_or_init(|| {
        let raw = std::env::var(ENV_VAR).ok()?;
        let (point, n) = raw.split_once(':')?;
        let n: u64 = n.parse().ok()?;
        (n > 0).then(|| (point.to_owned(), n))
    })
    .as_ref()
}

/// Whether the armed crash point matches `point` at this `occurrence`
/// (a 1-based count the call site maintains). Always `false` when
/// [`ENV_VAR`] is unset.
#[must_use]
pub fn hit(point: &str, occurrence: u64) -> bool {
    match spec() {
        Some((armed, n)) => armed == point && occurrence == *n,
        None => false,
    }
}

/// Like [`hit`] for call sites without a natural counter: maintains a
/// process-global occurrence count that only advances while `point` is
/// the armed point (at most one point is armed per process, so a
/// single counter suffices).
#[must_use]
pub fn hit_auto(point: &str) -> bool {
    static COUNT: AtomicU64 = AtomicU64::new(0);
    match spec() {
        Some((armed, n)) if armed == point => COUNT.fetch_add(1, Ordering::Relaxed) + 1 == *n,
        _ => false,
    }
}

/// Dies the way a kernel kill would: a structured stderr event for the
/// harness log, then `abort()` — no unwinding, no destructors, no
/// flushes beyond what the call site already persisted.
pub fn crash(point: &str) -> ! {
    eprintln!("{{\"event\":\"crash_injected\",\"point\":\"{point}\"}}");
    std::process::abort();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_env_never_hits() {
        // The test binary does not set CARBON_EDGE_CRASH, so the
        // cached spec is None and every probe is cold.
        assert!(!hit("wal-torn-append", 1));
        assert!(!hit_auto("ckpt-pre-rename"));
    }
}
