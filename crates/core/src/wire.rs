//! Wire-protocol decoding for the serve daemon's request stream.
//!
//! The stream is newline-delimited JSON with exactly two message
//! shapes:
//!
//! ```text
//! {"edge": i, "count": c}   c requests arrived at edge i (count defaults to 1)
//! {"slot_end": true}        close the open slot now
//! ```
//!
//! Two decoders implement the protocol:
//!
//! * [`decode_strict`] — the reference path: full JSON parse through
//!   `cne_util::json`, then field extraction. Its error strings are
//!   part of the daemon's observable contract (they appear verbatim
//!   in `bad_line` events), so they never change.
//! * [`decode_fast`] — a hand-rolled, zero-allocation recognizer for
//!   the two canonical shapes, operating directly on the raw line
//!   bytes. It returns `Some` **only** when it is certain the strict
//!   path would accept the line with the same values; everything
//!   else — unusual whitespace, reordered or duplicated keys, escaped
//!   key names, numeric overflow, out-of-range edges, any syntax
//!   error — returns `None` and is retried through the strict path.
//!
//! [`decode`] composes the two, so a caller gets strict-path
//! semantics (including the exact error strings) at fast-path speed
//! for the overwhelmingly common canonical lines. The equivalence is
//! enforced by a property suite below: on arbitrary generated and
//! adversarial inputs, the composed decoder and the strict decoder
//! agree on accept/reject, decoded values, and error text.
//!
//! The fast path's conservatism is load-bearing. Its whitespace set
//! (space, tab, CR) is a strict subset of both the JSON parser's
//! (`space, tab, LF, CR`) and `str::trim`'s (Unicode), its numbers
//! use checked `u64` arithmetic (overflow falls back, where the JSON
//! parser demotes the literal to a float and the strict path rejects
//! it), and any accepted line is pure ASCII by construction — so the
//! caller may skip UTF-8 validation for fast-path hits.

use cne_util::json::{self, Json};

/// Which decoder pipeline `carbon-edge serve` runs per wire line
/// (`--wire-decode`). `Fast` is the default and is observably
/// identical to `Strict` — the CI smoke job `cmp`s full traces from
/// both — so `Strict` exists for exactly that cross-check and for
/// bisecting a suspected decoder divergence in the field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireDecode {
    /// [`decode_fast`] first, strict fallback ([`decode`]).
    #[default]
    Fast,
    /// [`decode_strict`] only.
    Strict,
}

impl std::str::FromStr for WireDecode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "fast" => Ok(Self::Fast),
            "strict" => Ok(Self::Strict),
            other => Err(format!(
                "unknown wire decode mode '{other}' (expected 'fast' or 'strict')"
            )),
        }
    }
}

impl std::fmt::Display for WireDecode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Fast => "fast",
            Self::Strict => "strict",
        })
    }
}

/// One parsed request-stream line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMsg {
    /// `{"edge": i, "count": c}` — `c` requests arrived at edge `i`
    /// during the open slot (`count` defaults to 1).
    Request {
        /// Zero-based edge index, already validated against the fleet.
        edge: usize,
        /// Number of requests the line reports.
        count: u64,
    },
    /// `{"slot_end": true}` — close the open slot now.
    SlotEnd,
}

/// Parses one line of the wire protocol through the full JSON parser.
///
/// This is the reference decoder: field lookup is first-match (JSON
/// objects keep duplicate keys in order), `slot_end` takes precedence
/// over `edge`, and `count` defaults to 1. The error strings are the
/// daemon's observable rejection contract.
///
/// # Errors
/// A human-readable `bad request line: …` message for anything that
/// is not a well-formed wire message.
pub fn decode_strict(line: &str, num_edges: usize) -> Result<WireMsg, String> {
    let doc = json::parse(line).map_err(|e| format!("bad request line: {e}"))?;
    let Json::Obj(fields) = doc else {
        return Err("bad request line: expected a JSON object".to_owned());
    };
    let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    if let Some(v) = get("slot_end") {
        return match v {
            Json::Bool(true) => Ok(WireMsg::SlotEnd),
            _ => Err("bad request line: slot_end must be true".to_owned()),
        };
    }
    let edge = match get("edge") {
        Some(Json::UInt(i)) => *i as usize,
        Some(_) => return Err("bad request line: edge must be a non-negative integer".to_owned()),
        None => return Err("bad request line: need \"edge\" or \"slot_end\"".to_owned()),
    };
    if edge >= num_edges {
        return Err(format!(
            "bad request line: edge {edge} out of range (fleet has {num_edges} edges)"
        ));
    }
    let count = match get("count") {
        Some(Json::UInt(c)) => *c,
        Some(_) => return Err("bad request line: count must be a non-negative integer".to_owned()),
        None => 1,
    };
    Ok(WireMsg::Request { edge, count })
}

/// True when the line is empty or pure ASCII spacing — the byte-level
/// equivalent of the daemon's "`trim()` left nothing, skip it" rule
/// for lines the fast path can judge. Lines containing any other byte
/// (including Unicode whitespace) must take the slow path, whose
/// `str::trim` makes the call.
#[must_use]
pub fn is_ascii_blank(line: &[u8]) -> bool {
    line.iter().all(|b| matches!(b, b' ' | b'\t' | b'\r'))
}

/// Byte cursor for [`decode_fast`]. Every helper returns `None` on
/// mismatch, which the decoder propagates as "fall back to strict".
struct FastCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FastCursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Skips the fast path's conservative whitespace subset.
    fn ws(&mut self) {
        while matches!(self.buf.get(self.pos), Some(b' ' | b'\t' | b'\r')) {
            self.pos += 1;
        }
    }

    fn byte(&mut self, want: u8) -> Option<()> {
        if self.buf.get(self.pos) == Some(&want) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn peek(&self) -> Option<u8> {
        self.buf.get(self.pos).copied()
    }

    /// Consumes an exact byte literal (a quoted key or `true`).
    fn lit(&mut self, want: &[u8]) -> bool {
        if self.buf[self.pos..].starts_with(want) {
            self.pos += want.len();
            true
        } else {
            false
        }
    }

    /// A run of ASCII digits as a checked `u64`. Overflow returns
    /// `None`: the JSON parser demotes such literals to floats, which
    /// the strict path rejects with its canonical error. Leading
    /// zeros are accepted — `"01".parse::<u64>()` is `Ok(1)` on the
    /// strict path too.
    fn uint(&mut self) -> Option<u64> {
        let mut value: u64 = 0;
        let mut digits = 0usize;
        while let Some(b @ b'0'..=b'9') = self.peek() {
            value = value.checked_mul(10)?.checked_add(u64::from(b - b'0'))?;
            digits += 1;
            self.pos += 1;
        }
        (digits > 0).then_some(value)
    }

    fn eof(&self) -> Option<()> {
        (self.pos == self.buf.len()).then_some(())
    }
}

/// Zero-allocation decoder for the two canonical wire shapes.
///
/// Returns `Some` only when the line is **certain** to be accepted by
/// [`decode_strict`] with identical values; every uncertainty — and
/// every certain rejection, including an out-of-range edge — returns
/// `None` so the strict path can produce the canonical outcome. A
/// `Some` result guarantees the line was pure ASCII.
#[must_use]
pub fn decode_fast(line: &[u8], num_edges: usize) -> Option<WireMsg> {
    let mut c = FastCursor::new(line);
    c.ws();
    c.byte(b'{')?;
    c.ws();
    if c.lit(b"\"slot_end\"") {
        c.ws();
        c.byte(b':')?;
        c.ws();
        if !c.lit(b"true") {
            return None;
        }
        c.ws();
        c.byte(b'}')?;
        c.ws();
        c.eof()?;
        return Some(WireMsg::SlotEnd);
    }
    if !c.lit(b"\"edge\"") {
        return None;
    }
    c.ws();
    c.byte(b':')?;
    c.ws();
    let edge = c.uint()?;
    c.ws();
    let count = if c.peek() == Some(b',') {
        c.pos += 1;
        c.ws();
        if !c.lit(b"\"count\"") {
            return None;
        }
        c.ws();
        c.byte(b':')?;
        c.ws();
        let count = c.uint()?;
        c.ws();
        count
    } else {
        1
    };
    c.byte(b'}')?;
    c.ws();
    c.eof()?;
    // Same cast the strict path performs; out-of-range edges fall
    // back so the strict path emits its exact error string.
    let edge = edge as usize;
    if edge >= num_edges {
        return None;
    }
    Some(WireMsg::Request { edge, count })
}

/// Full-speed decode with strict-path semantics: try [`decode_fast`],
/// fall back to [`decode_strict`] on anything unusual.
///
/// # Errors
/// Exactly the strict path's `bad request line: …` messages.
pub fn decode(line: &str, num_edges: usize) -> Result<WireMsg, String> {
    match decode_fast(line.as_bytes(), num_edges) {
        Some(msg) => Ok(msg),
        None => decode_strict(line, num_edges),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The property both suites below enforce: wherever the fast path
    /// speaks, it must agree with the strict path bit-for-bit.
    fn assert_equivalent(line: &str, num_edges: usize) {
        if let Some(fast) = decode_fast(line.as_bytes(), num_edges) {
            assert_eq!(
                decode_strict(line, num_edges),
                Ok(fast),
                "fast path accepted {line:?} but strict path disagrees"
            );
        }
        // The composed decoder is therefore always strict-equivalent.
        assert_eq!(decode(line, num_edges), decode_strict(line, num_edges));
    }

    #[test]
    fn canonical_shapes_take_the_fast_path() {
        assert_eq!(
            decode_fast(br#"{"edge":3,"count":17}"#, 8),
            Some(WireMsg::Request { edge: 3, count: 17 })
        );
        assert_eq!(
            decode_fast(br#"{"edge": 0}"#, 8),
            Some(WireMsg::Request { edge: 0, count: 1 })
        );
        assert_eq!(
            decode_fast(b" { \"edge\"\t: 7 , \"count\" : 2 } \r", 8),
            Some(WireMsg::Request { edge: 7, count: 2 })
        );
        assert_eq!(
            decode_fast(br#"{"slot_end":true}"#, 8),
            Some(WireMsg::SlotEnd)
        );
        assert_eq!(
            decode_fast(br#"  {  "slot_end"  :  true  }  "#, 8),
            Some(WireMsg::SlotEnd)
        );
        assert_eq!(
            decode_fast(
                &format!("{{\"edge\":1,\"count\":{}}}", u64::MAX).into_bytes(),
                8
            ),
            Some(WireMsg::Request {
                edge: 1,
                count: u64::MAX
            })
        );
    }

    #[test]
    fn uncertain_lines_fall_back() {
        let fleet = 8;
        for line in [
            // Out of range / overflow: strict rejects with specific text.
            r#"{"edge":8}"#,
            r#"{"edge":18446744073709551615}"#,
            r#"{"edge":99999999999999999999999}"#,
            r#"{"edge":1,"count":99999999999999999999999}"#,
            // Valid JSON the strict path accepts but the fast grammar
            // does not recognize — fallback must accept them.
            r#"{"count":2,"edge":1}"#,
            r#"{"edge":1,"extra":true}"#,
            r#"{"edge":1,"count":2,"count":3}"#,
            r#"{"slot_end":true,"edge":99}"#,
            "{\"edge\":\n1}",
            // Plain rejects.
            r#"{"edge":-3}"#,
            r#"{"edge":1.5}"#,
            r#"{"edge":"1"}"#,
            r#"{"slot_end":1}"#,
            r#"{"slot_end":"true"}"#,
            r#"{"edge":1,"count":null}"#,
            r#"{"edge":1"count":2}"#,
            r#"{"edge": 3, "count": 17"#,
            r#"{"edge":1} x"#,
            "[1,2]",
            "",
            "   ",
        ] {
            assert_eq!(decode_fast(line.as_bytes(), fleet), None, "line {line:?}");
            assert_equivalent(line, fleet);
        }
    }

    #[test]
    fn decode_mode_parses() {
        assert_eq!("fast".parse::<WireDecode>(), Ok(WireDecode::Fast));
        assert_eq!("STRICT".parse::<WireDecode>(), Ok(WireDecode::Strict));
        assert!("loose".parse::<WireDecode>().is_err());
        assert_eq!(WireDecode::Fast.to_string(), "fast");
        assert_eq!(WireDecode::default(), WireDecode::Fast);
    }

    #[test]
    fn ascii_blank_is_conservative() {
        assert!(is_ascii_blank(b""));
        assert!(is_ascii_blank(b" \t\r"));
        assert!(!is_ascii_blank(b" x "));
        // Unicode whitespace is NOT blank to the fast path even
        // though `str::trim` would drop it — the slow path decides.
        assert!(!is_ascii_blank("\u{a0}".as_bytes()));
        assert!(!is_ascii_blank(b"\x0c"));
    }

    /// Splitmix64 — tiny deterministic generator for the adversarial
    /// mutation corpus (independent of proptest's shrinking RNG).
    struct SplitMix64(u64);

    impl SplitMix64 {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Deterministic mutation corpus: canonical lines damaged by
    /// truncation, byte flips, duplicated keys, injected whitespace,
    /// and non-UTF-8 bytes. Every UTF-8 survivor must stay
    /// fast/strict-equivalent; non-UTF-8 mutants must never be
    /// accepted by the fast path (its accepted alphabet is ASCII).
    #[test]
    fn mutation_corpus_stays_equivalent() {
        let mut rng = SplitMix64(0xc0ff_ee11);
        let seeds = [
            r#"{"edge":3,"count":17}"#.to_owned(),
            r#"{"edge": 0}"#.to_owned(),
            r#"{"slot_end":true}"#.to_owned(),
            format!("{{\"edge\":1,\"count\":{}}}", u64::MAX),
            r#"{"edge":7,"count":0}"#.to_owned(),
        ];
        let mut checked = 0usize;
        for seed in &seeds {
            let bytes = seed.as_bytes();
            // Every truncation prefix.
            for cut in 0..bytes.len() {
                let torn = &bytes[..cut];
                if let Ok(s) = std::str::from_utf8(torn) {
                    assert_equivalent(s, 8);
                    checked += 1;
                }
            }
            // Random single-byte flips and insertions.
            for _ in 0..400 {
                let mut mutant = bytes.to_vec();
                match rng.next() % 3 {
                    0 => {
                        let at = (rng.next() as usize) % mutant.len();
                        mutant[at] = (rng.next() % 256) as u8;
                    }
                    1 => {
                        let at = (rng.next() as usize) % (mutant.len() + 1);
                        mutant.insert(at, (rng.next() % 256) as u8);
                    }
                    _ => {
                        let at = (rng.next() as usize) % (mutant.len() + 1);
                        let ws = [b' ', b'\t', b'\r', b'\n'][(rng.next() % 4) as usize];
                        mutant.insert(at, ws);
                    }
                }
                match std::str::from_utf8(&mutant) {
                    Ok(s) => {
                        assert_equivalent(s, 8);
                        checked += 1;
                    }
                    Err(_) => {
                        // Anything the fast path accepts is pure
                        // ASCII; a non-UTF-8 mutant can never pass.
                        assert_eq!(decode_fast(&mutant, 8), None);
                    }
                }
            }
        }
        assert!(checked > 1000, "corpus shrank unexpectedly: {checked}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// Canonical generated lines (arbitrary spacing drawn from the
        /// JSON whitespace set, arbitrary values) decode identically
        /// on both paths, and in-range canonical spacing keeps the
        /// fast path engaged.
        #[test]
        fn generated_requests_are_equivalent(
            edge in 0u64..20,
            count in prop_oneof![
                Just(None),
                (0u64..u64::MAX).prop_map(Some),
                Just(Some(u64::MAX)),
            ],
            num_edges in 1usize..16,
            sp in proptest::collection::vec(prop_oneof![
                Just(""), Just(" "), Just("\t"), Just("  "), Just("\r")
            ], 8..9),
        ) {
            let count_part = count.map_or(String::new(), |c| {
                format!(",{}\"count\"{}:{}{c}", sp[5], sp[6], sp[7])
            });
            let line = format!(
                "{}{{{}\"edge\"{}:{}{edge}{}{count_part}}}{}",
                sp[0], sp[1], sp[2], sp[3], sp[4], sp[0],
            );
            let fast = decode_fast(line.as_bytes(), num_edges);
            let strict = decode_strict(&line, num_edges);
            if (edge as usize) < num_edges {
                // In range: the fast path must engage and agree.
                let expected = WireMsg::Request { edge: edge as usize, count: count.unwrap_or(1) };
                prop_assert_eq!(fast, Some(expected));
                prop_assert_eq!(strict, Ok(expected));
            } else {
                // Out of range: fast path defers, strict path rejects.
                prop_assert_eq!(fast, None);
                prop_assert!(strict.is_err());
            }
            prop_assert_eq!(decode(&line, num_edges), decode_strict(&line, num_edges));
        }

        /// Arbitrary printable-ish strings: the fast path never
        /// disagrees with the strict path, accept or reject.
        #[test]
        fn arbitrary_lines_are_equivalent(
            bytes in proptest::collection::vec(prop_oneof![
                0x20u8..0x7f, Just(b'\t'), Just(b'\r')
            ], 0..48),
            num_edges in 1usize..16,
        ) {
            let line = String::from_utf8(bytes).expect("ASCII by construction");
            if let Some(fast) = decode_fast(line.as_bytes(), num_edges) {
                prop_assert_eq!(decode_strict(&line, num_edges), Ok(fast));
            }
            prop_assert_eq!(decode(&line, num_edges), decode_strict(&line, num_edges));
        }

        /// JSON-shaped fragments with wire keys spliced in: stress the
        /// boundary between the fast grammar and real JSON.
        #[test]
        fn spliced_json_fragments_are_equivalent(
            parts in proptest::collection::vec(prop_oneof![
                Just("{"), Just("}"), Just("\"edge\""), Just("\"count\""),
                Just("\"slot_end\""), Just(":"), Just(","), Just("true"),
                Just("false"), Just("null"), Just("0"), Just("1"), Just("42"),
                Just("18446744073709551615"), Just("99999999999999999999999"),
                Just("-1"), Just("1.5"), Just(" "), Just("\t"),
            ], 0..12),
            num_edges in 1usize..16,
        ) {
            let line: String = parts.concat();
            if let Some(fast) = decode_fast(line.as_bytes(), num_edges) {
                prop_assert_eq!(decode_strict(&line, num_edges), Ok(fast));
            }
            prop_assert_eq!(decode(&line, num_edges), decode_strict(&line, num_edges));
        }
    }
}
