//! Bounded exponential backoff and the unmet-trade carry account.

/// Bounded exponential backoff: attempt `k` (1-based) waits
/// `min(base · 2^(k−1), cap)` slots before the next try.
///
/// A pure function of the attempt number — no randomness, no jitter —
/// so a retry schedule is trivially deterministic and the simulator's
/// reproducibility contract holds under faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    base_slots: u32,
    cap_slots: u32,
}

impl Backoff {
    /// Creates a backoff rule.
    ///
    /// # Panics
    /// Panics if `cap_slots < base_slots`.
    #[must_use]
    pub fn new(base_slots: u32, cap_slots: u32) -> Self {
        assert!(
            cap_slots >= base_slots,
            "backoff cap ({cap_slots}) below base ({base_slots})"
        );
        Self {
            base_slots,
            cap_slots,
        }
    }

    /// Slots to wait after the `attempt`-th consecutive failure
    /// (`attempt >= 1`). Saturates at the cap.
    #[must_use]
    pub fn delay_slots(&self, attempt: u32) -> u64 {
        if self.base_slots == 0 {
            return 0;
        }
        let doublings = attempt.saturating_sub(1).min(32);
        let raw = u64::from(self.base_slots) << doublings;
        raw.min(u64::from(self.cap_slots))
    }
}

/// Wall-clock retry schedule for I/O at the daemon's boundary —
/// transport accepts, WAL appends, checkpoint writes — built on the
/// same deterministic [`Backoff`] rule the simulator uses for trades.
///
/// The *schedule* (which attempt waits how long) is a pure function of
/// the configuration; only the sleeps themselves touch the clock, and
/// they happen outside the deterministic slot machinery, so retries
/// never perturb the bit-identical trace contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallRetry {
    backoff: Backoff,
    unit: std::time::Duration,
    max_attempts: u32,
}

impl WallRetry {
    /// Creates a schedule: up to `max_attempts` tries, waiting
    /// `min(base_units · 2^(k−1), cap_units) · unit` after the `k`-th
    /// failure.
    ///
    /// # Panics
    /// Panics if `max_attempts == 0` or `cap_units < base_units`.
    #[must_use]
    pub fn new(
        max_attempts: u32,
        base_units: u32,
        cap_units: u32,
        unit: std::time::Duration,
    ) -> Self {
        assert!(max_attempts > 0, "at least one attempt is required");
        Self {
            backoff: Backoff::new(base_units, cap_units),
            unit,
            max_attempts,
        }
    }

    /// The daemon's default: 5 attempts backing off 50 ms → 800 ms.
    #[must_use]
    pub fn daemon_default() -> Self {
        Self::new(5, 1, 16, std::time::Duration::from_millis(50))
    }

    /// Maximum number of attempts (1 initial + retries).
    #[must_use]
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Wall-clock wait after the `attempt`-th consecutive failure
    /// (`attempt >= 1`).
    #[must_use]
    pub fn delay(&self, attempt: u32) -> std::time::Duration {
        // delay_slots caps at cap_units ≤ u32::MAX, so the u32
        // narrowing cannot truncate.
        self.unit * u32::try_from(self.backoff.delay_slots(attempt)).expect("capped at u32")
    }

    /// Runs `op` until it succeeds or the attempt budget is spent,
    /// sleeping the scheduled delay between tries. `on_retry` observes
    /// each scheduled retry (attempt number, error, upcoming delay) —
    /// the daemon hooks its ops counters and structured stderr events
    /// there.
    ///
    /// # Errors
    /// Returns the final attempt's error once the budget is exhausted.
    pub fn run<T>(
        &self,
        mut op: impl FnMut() -> Result<T, String>,
        mut on_retry: impl FnMut(u32, &str, std::time::Duration),
    ) -> Result<T, String> {
        let mut attempt = 0;
        loop {
            match op() {
                Ok(value) => return Ok(value),
                Err(e) => {
                    attempt += 1;
                    if attempt >= self.max_attempts {
                        return Err(e);
                    }
                    let delay = self.delay(attempt);
                    on_retry(attempt, &e, delay);
                    std::thread::sleep(delay);
                }
            }
        }
    }
}

/// Carry-forward account for allowance orders the market failed to
/// execute.
///
/// Every slot the trading policy requests a position `(z, w)`. When the
/// market halts or rejects the order, the request is *not* dropped: it
/// joins the carry and is resubmitted (with [`Backoff`]) until it
/// executes. The invariant the account maintains — and the ledger
/// reconciliation test pins — is
///
/// ```text
/// requested == executed + unmet        (per side, at any slot)
/// ```
///
/// so no allowance position is ever silently leaked by a fault.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeCarry {
    backoff: Backoff,
    carry_buy: f64,
    carry_sell: f64,
    attempts: u32,
    next_attempt_slot: u64,
    requested_buy: f64,
    requested_sell: f64,
}

impl TradeCarry {
    /// Creates an empty account.
    #[must_use]
    pub fn new(backoff: Backoff) -> Self {
        Self {
            backoff,
            carry_buy: 0.0,
            carry_sell: 0.0,
            attempts: 0,
            next_attempt_slot: 0,
            requested_buy: 0.0,
            requested_sell: 0.0,
        }
    }

    /// Folds slot `t`'s fresh policy request into the carry and returns
    /// the `(buy, sell)` order to submit, or `None` while backing off
    /// (the request still joins the carry; nothing is lost).
    pub fn prepare(&mut self, t: usize, req_buy: f64, req_sell: f64) -> Option<(f64, f64)> {
        assert!(
            req_buy >= 0.0 && req_sell >= 0.0,
            "trade requests must be non-negative"
        );
        self.requested_buy += req_buy;
        self.requested_sell += req_sell;
        self.carry_buy += req_buy;
        self.carry_sell += req_sell;
        if (t as u64) < self.next_attempt_slot {
            return None;
        }
        Some((self.carry_buy, self.carry_sell))
    }

    /// Records a failed attempt at slot `t` (halt or rejection); the
    /// whole submitted order stays in the carry and the next attempt is
    /// scheduled by the backoff rule.
    pub fn record_failure(&mut self, t: usize) {
        self.attempts += 1;
        self.next_attempt_slot = t as u64 + 1 + self.backoff.delay_slots(self.attempts);
    }

    /// Records a successful execution: the executed amounts drain the
    /// carry (clamped trades leave the remainder pending). Returns the
    /// number of failed attempts this success recovered from.
    pub fn record_success(&mut self, executed_buy: f64, executed_sell: f64) -> u32 {
        self.carry_buy = (self.carry_buy - executed_buy).max(0.0);
        self.carry_sell = (self.carry_sell - executed_sell).max(0.0);
        self.next_attempt_slot = 0;
        std::mem::take(&mut self.attempts)
    }

    /// Allowances requested to buy so far (cumulative).
    #[must_use]
    pub fn requested_buy(&self) -> f64 {
        self.requested_buy
    }

    /// Allowances requested to sell so far (cumulative).
    #[must_use]
    pub fn requested_sell(&self) -> f64 {
        self.requested_sell
    }

    /// Buy allowances still unmet (carried forward).
    #[must_use]
    pub fn unmet_buy(&self) -> f64 {
        self.carry_buy
    }

    /// Sell allowances still unmet (carried forward).
    #[must_use]
    pub fn unmet_sell(&self) -> f64 {
        self.carry_sell
    }

    /// Consecutive failed attempts since the last success.
    #[must_use]
    pub fn pending_attempts(&self) -> u32 {
        self.attempts
    }

    /// Snapshots the mutable account state as plain numbers, for a
    /// checkpoint. The backoff rule is excluded — it comes from the
    /// fault scenario, which is configuration, not run state.
    #[must_use]
    pub fn to_parts(&self) -> TradeCarryParts {
        TradeCarryParts {
            carry_buy: self.carry_buy,
            carry_sell: self.carry_sell,
            attempts: self.attempts,
            next_attempt_slot: self.next_attempt_slot,
            requested_buy: self.requested_buy,
            requested_sell: self.requested_sell,
        }
    }

    /// Reinstalls checkpointed state on an account that keeps its
    /// configured backoff rule.
    pub fn restore_parts(&mut self, parts: &TradeCarryParts) {
        self.carry_buy = parts.carry_buy;
        self.carry_sell = parts.carry_sell;
        self.attempts = parts.attempts;
        self.next_attempt_slot = parts.next_attempt_slot;
        self.requested_buy = parts.requested_buy;
        self.requested_sell = parts.requested_sell;
    }
}

/// Plain-data snapshot of a [`TradeCarry`]'s mutable state (everything
/// except the configured backoff rule), used by checkpoint/restore.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeCarryParts {
    /// Buy allowances still unmet (carried forward).
    pub carry_buy: f64,
    /// Sell allowances still unmet (carried forward).
    pub carry_sell: f64,
    /// Consecutive failed attempts since the last success.
    pub attempts: u32,
    /// Slot before which no resubmission is attempted.
    pub next_attempt_slot: u64,
    /// Cumulative buy allowances requested.
    pub requested_buy: f64,
    /// Cumulative sell allowances requested.
    pub requested_sell: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let b = Backoff::new(1, 8);
        assert_eq!(b.delay_slots(1), 1);
        assert_eq!(b.delay_slots(2), 2);
        assert_eq!(b.delay_slots(3), 4);
        assert_eq!(b.delay_slots(4), 8);
        assert_eq!(b.delay_slots(5), 8);
        assert_eq!(b.delay_slots(40), 8);
    }

    #[test]
    fn zero_base_never_waits() {
        let b = Backoff::new(0, 8);
        assert_eq!(b.delay_slots(1), 0);
        assert_eq!(b.delay_slots(9), 0);
    }

    #[test]
    #[should_panic(expected = "backoff cap")]
    fn inverted_bounds_rejected() {
        let _ = Backoff::new(4, 2);
    }

    #[test]
    fn carry_preserves_requested_equals_executed_plus_unmet() {
        let mut c = TradeCarry::new(Backoff::new(1, 4));
        let (b, s) = c.prepare(0, 3.0, 1.0).expect("first attempt allowed");
        assert_eq!((b, s), (3.0, 1.0));
        c.record_failure(0);
        // Backing off at t = 1 (delay 1 after the first failure).
        assert!(c.prepare(1, 2.0, 0.0).is_none());
        // t = 2: resubmit the whole carry.
        let (b, s) = c.prepare(2, 1.0, 0.5).expect("retry due");
        assert_eq!((b, s), (6.0, 1.5));
        // Market clamps the fill; the rest stays pending.
        let recovered = c.record_success(4.0, 1.5);
        assert_eq!(recovered, 1);
        assert_eq!(c.unmet_buy(), 2.0);
        assert_eq!(c.unmet_sell(), 0.0);
        let executed = 4.0;
        assert!((c.requested_buy() - (executed + c.unmet_buy())).abs() < 1e-12);
    }

    #[test]
    fn wall_retry_schedule_is_deterministic() {
        let r = WallRetry::new(5, 1, 16, std::time::Duration::from_millis(50));
        assert_eq!(r.delay(1), std::time::Duration::from_millis(50));
        assert_eq!(r.delay(2), std::time::Duration::from_millis(100));
        assert_eq!(r.delay(5), std::time::Duration::from_millis(800));
        assert_eq!(r.delay(40), std::time::Duration::from_millis(800));
        assert_eq!(r.max_attempts(), 5);
    }

    #[test]
    fn wall_retry_recovers_and_reports_each_retry() {
        let r = WallRetry::new(4, 1, 4, std::time::Duration::ZERO);
        let mut fails_left = 2;
        let mut seen = Vec::new();
        let out = r.run(
            || {
                if fails_left > 0 {
                    fails_left -= 1;
                    Err(format!("transient {fails_left}"))
                } else {
                    Ok(42)
                }
            },
            |attempt, err, _| seen.push((attempt, err.to_owned())),
        );
        assert_eq!(out, Ok(42));
        assert_eq!(
            seen,
            vec![(1, "transient 1".to_owned()), (2, "transient 0".to_owned())]
        );
    }

    #[test]
    fn wall_retry_exhausts_with_the_last_error() {
        let r = WallRetry::new(3, 1, 4, std::time::Duration::ZERO);
        let mut calls = 0;
        let out: Result<(), String> = r.run(
            || {
                calls += 1;
                Err(format!("fail {calls}"))
            },
            |_, _, _| {},
        );
        assert_eq!(out, Err("fail 3".to_owned()));
        assert_eq!(calls, 3);
    }

    proptest! {
        /// The backoff schedule is a deterministic, bounded, monotone
        /// function of the attempt number.
        #[test]
        fn backoff_deterministic_bounded_monotone(
            base in 0u32..64,
            extra in 0u32..64,
            attempts in 1u32..50,
        ) {
            let cap = base + extra;
            let b = Backoff::new(base, cap);
            let mut prev = 0u64;
            for k in 1..=attempts {
                let d1 = b.delay_slots(k);
                let d2 = Backoff::new(base, cap).delay_slots(k);
                prop_assert_eq!(d1, d2, "same inputs, same delay");
                prop_assert!(d1 <= u64::from(cap), "delay beyond cap");
                prop_assert!(d1 >= prev, "backoff must not shrink");
                prev = d1;
            }
        }

        /// Any interleaving of requests, failures, and (partial) fills
        /// maintains `requested == executed + unmet`.
        #[test]
        fn carry_never_leaks(ops in proptest::collection::vec((0.0f64..5.0, 0.0f64..3.0, 0u8..3), 1..40)) {
            let mut c = TradeCarry::new(Backoff::new(1, 8));
            let mut executed_buy = 0.0f64;
            let mut executed_sell = 0.0f64;
            for (t, (rb, rs, action)) in ops.iter().enumerate() {
                match c.prepare(t, *rb, *rs) {
                    None => {}
                    Some((ob, os)) => match action {
                        0 => c.record_failure(t),
                        1 => {
                            // Full fill.
                            let _ = c.record_success(ob, os);
                            executed_buy += ob;
                            executed_sell += os;
                        }
                        _ => {
                            // Clamped fill.
                            let fb = ob.min(2.0);
                            let fs = os.min(1.0);
                            let _ = c.record_success(fb, fs);
                            executed_buy += fb;
                            executed_sell += fs;
                        }
                    },
                }
                prop_assert!((c.requested_buy() - (executed_buy + c.unmet_buy())).abs() < 1e-6);
                prop_assert!((c.requested_sell() - (executed_sell + c.unmet_sell())).abs() < 1e-6);
            }
        }
    }
}
