//! Declarative fault scenarios and their JSON schema.

use cne_util::json::{self, Json};

/// A declarative fault-injection scenario.
///
/// All rates are per-draw Bernoulli probabilities in `[0, 1]`; a rate
/// of zero disables that fault class entirely. The default scenario is
/// fault-free, so `FaultScenario::default()` realizes a schedule that
/// never fires and leaves a run bit-identical to one without any fault
/// plane at all.
///
/// Scenarios are loaded from JSON files via
/// [`from_json_str`](Self::from_json_str); every field is optional and
/// defaults to the values of [`FaultScenario::default`]. Unknown keys
/// are rejected (they are almost always typos that would otherwise
/// silently disable the intended fault).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultScenario {
    /// Display name (telemetry label and report headers).
    pub name: String,
    /// Probability that an edge is down for a slot: arrivals are
    /// suppressed, nothing is served, downloads cannot proceed, and the
    /// slot's loss feedback is lost.
    pub edge_outage_rate: f64,
    /// Probability that an edge's slot workload surges to
    /// [`surge_multiplier`](Self::surge_multiplier)× its trace value.
    pub surge_rate: f64,
    /// Multiplier applied to a surging slot's arrivals.
    pub surge_multiplier: f64,
    /// Probability that a model download (switch) attempt fails. The
    /// edge keeps serving its previous model and retries with backoff;
    /// the switching cost is charged only on success. The very first
    /// download of a run cannot fail (there is no previous model to
    /// fall back to).
    pub download_failure_rate: f64,
    /// Probability that a slot's loss report is lost or corrupted in
    /// transit: the selector's importance-weighted update is skipped
    /// for the enclosing block while the block schedule keeps
    /// advancing.
    pub feedback_loss_rate: f64,
    /// Probability that the allowance market is halted for a slot (no
    /// orders execute).
    pub market_halt_rate: f64,
    /// Probability that the market rejects the slot's buy/sell orders.
    pub order_rejection_rate: f64,
    /// After this many consecutive failed download attempts for the
    /// same target model, the fetch fails over (e.g. to a secondary
    /// registry) and succeeds regardless of the schedule — bounding the
    /// degradation window.
    pub max_download_retries: u32,
    /// Backoff delay after the first failed attempt, in slots.
    pub backoff_base_slots: u32,
    /// Upper bound on any single backoff delay, in slots.
    pub backoff_cap_slots: u32,
}

impl Default for FaultScenario {
    fn default() -> Self {
        Self {
            name: "none".to_owned(),
            edge_outage_rate: 0.0,
            surge_rate: 0.0,
            surge_multiplier: 3.0,
            download_failure_rate: 0.0,
            feedback_loss_rate: 0.0,
            market_halt_rate: 0.0,
            order_rejection_rate: 0.0,
            max_download_retries: 4,
            backoff_base_slots: 1,
            backoff_cap_slots: 8,
        }
    }
}

/// A scenario file failed to parse or validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError(String);

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl FaultScenario {
    /// A mixed-fault scenario applying the same rate to every fault
    /// class (the resilience sweep's x-axis).
    #[must_use]
    pub fn mixed(name: &str, rate: f64) -> Self {
        Self {
            name: name.to_owned(),
            edge_outage_rate: rate,
            surge_rate: rate,
            download_failure_rate: rate,
            feedback_loss_rate: rate,
            market_halt_rate: rate,
            order_rejection_rate: rate,
            ..Self::default()
        }
    }

    /// Whether any fault class can fire at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        [
            self.edge_outage_rate,
            self.surge_rate,
            self.download_failure_rate,
            self.feedback_loss_rate,
            self.market_halt_rate,
            self.order_rejection_rate,
        ]
        .iter()
        .any(|&r| r > 0.0)
    }

    /// The retry backoff rule this scenario configures.
    #[must_use]
    pub fn backoff(&self) -> crate::Backoff {
        crate::Backoff::new(self.backoff_base_slots, self.backoff_cap_slots)
    }

    /// Validates rates and parameters.
    ///
    /// # Errors
    /// Returns a human-readable message naming the offending field.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let rates = [
            ("edge_outage_rate", self.edge_outage_rate),
            ("surge_rate", self.surge_rate),
            ("download_failure_rate", self.download_failure_rate),
            ("feedback_loss_rate", self.feedback_loss_rate),
            ("market_halt_rate", self.market_halt_rate),
            ("order_rejection_rate", self.order_rejection_rate),
        ];
        for (field, rate) in rates {
            if !(0.0..=1.0).contains(&rate) {
                return Err(ScenarioError(format!(
                    "{field} must lie in [0, 1], got {rate}"
                )));
            }
        }
        if !self.surge_multiplier.is_finite() || self.surge_multiplier < 0.0 {
            return Err(ScenarioError(format!(
                "surge_multiplier must be finite and non-negative, got {}",
                self.surge_multiplier
            )));
        }
        if self.backoff_cap_slots < self.backoff_base_slots {
            return Err(ScenarioError(format!(
                "backoff_cap_slots ({}) must be >= backoff_base_slots ({})",
                self.backoff_cap_slots, self.backoff_base_slots
            )));
        }
        Ok(())
    }

    /// Parses a scenario from a JSON object string.
    ///
    /// # Errors
    /// Returns a message naming the malformed or unknown field; the
    /// caller prepends the file path.
    pub fn from_json_str(input: &str) -> Result<Self, ScenarioError> {
        let value =
            json::parse(input).map_err(|e| ScenarioError(format!("not valid JSON: {e}")))?;
        let Some(object) = value.as_object() else {
            return Err(ScenarioError(
                "scenario must be a JSON object of fault rates".to_owned(),
            ));
        };
        let mut scenario = Self::default();
        for (key, value) in object {
            match key.as_str() {
                "name" => {
                    scenario.name = value
                        .as_str()
                        .ok_or_else(|| ScenarioError("name must be a string".to_owned()))?
                        .to_owned();
                }
                "edge_outage_rate" => scenario.edge_outage_rate = rate_field(key, value)?,
                "surge_rate" => scenario.surge_rate = rate_field(key, value)?,
                "surge_multiplier" => scenario.surge_multiplier = rate_field(key, value)?,
                "download_failure_rate" => {
                    scenario.download_failure_rate = rate_field(key, value)?;
                }
                "feedback_loss_rate" => scenario.feedback_loss_rate = rate_field(key, value)?,
                "market_halt_rate" => scenario.market_halt_rate = rate_field(key, value)?,
                "order_rejection_rate" => scenario.order_rejection_rate = rate_field(key, value)?,
                "max_download_retries" => {
                    scenario.max_download_retries = uint_field(key, value)?;
                }
                "backoff_base_slots" => scenario.backoff_base_slots = uint_field(key, value)?,
                "backoff_cap_slots" => scenario.backoff_cap_slots = uint_field(key, value)?,
                other => {
                    return Err(ScenarioError(format!(
                        "unknown field '{other}' (known fields: name, *_rate, \
                         surge_multiplier, max_download_retries, backoff_*_slots)"
                    )));
                }
            }
        }
        scenario.validate()?;
        Ok(scenario)
    }

    /// Encodes the scenario as a JSON object (the schema
    /// [`from_json_str`](Self::from_json_str) reads).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".to_owned(), Json::Str(self.name.clone())),
            (
                "edge_outage_rate".to_owned(),
                Json::Float(self.edge_outage_rate),
            ),
            ("surge_rate".to_owned(), Json::Float(self.surge_rate)),
            (
                "surge_multiplier".to_owned(),
                Json::Float(self.surge_multiplier),
            ),
            (
                "download_failure_rate".to_owned(),
                Json::Float(self.download_failure_rate),
            ),
            (
                "feedback_loss_rate".to_owned(),
                Json::Float(self.feedback_loss_rate),
            ),
            (
                "market_halt_rate".to_owned(),
                Json::Float(self.market_halt_rate),
            ),
            (
                "order_rejection_rate".to_owned(),
                Json::Float(self.order_rejection_rate),
            ),
            (
                "max_download_retries".to_owned(),
                Json::UInt(u64::from(self.max_download_retries)),
            ),
            (
                "backoff_base_slots".to_owned(),
                Json::UInt(u64::from(self.backoff_base_slots)),
            ),
            (
                "backoff_cap_slots".to_owned(),
                Json::UInt(u64::from(self.backoff_cap_slots)),
            ),
        ])
    }
}

fn rate_field(key: &str, value: &Json) -> Result<f64, ScenarioError> {
    value
        .as_f64()
        .filter(|v| v.is_finite())
        .ok_or_else(|| ScenarioError(format!("{key} must be a finite number")))
}

fn uint_field(key: &str, value: &Json) -> Result<u32, ScenarioError> {
    value
        .as_u64()
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| ScenarioError(format!("{key} must be a small non-negative integer")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inactive_and_valid() {
        let s = FaultScenario::default();
        assert!(!s.is_active());
        s.validate().expect("default validates");
    }

    #[test]
    fn mixed_is_active() {
        assert!(FaultScenario::mixed("m", 0.05).is_active());
        assert!(!FaultScenario::mixed("z", 0.0).is_active());
    }

    #[test]
    fn json_round_trip() {
        let mut s = FaultScenario::mixed("rt", 0.125);
        s.max_download_retries = 7;
        s.backoff_base_slots = 2;
        s.backoff_cap_slots = 16;
        let back = FaultScenario::from_json_str(&s.to_json().encode()).expect("round trip");
        assert_eq!(s, back);
    }

    #[test]
    fn partial_object_fills_defaults() {
        let s = FaultScenario::from_json_str(r#"{"edge_outage_rate": 0.1}"#).expect("parses");
        assert_eq!(s.edge_outage_rate, 0.1);
        assert_eq!(s.market_halt_rate, 0.0);
        assert_eq!(
            s.max_download_retries,
            FaultScenario::default().max_download_retries
        );
    }

    #[test]
    fn unknown_field_is_rejected() {
        let err = FaultScenario::from_json_str(r#"{"edge_outage_rat": 0.1}"#).unwrap_err();
        assert!(err.to_string().contains("unknown field"), "{err}");
    }

    #[test]
    fn out_of_range_rate_is_rejected() {
        let err = FaultScenario::from_json_str(r#"{"surge_rate": 1.5}"#).unwrap_err();
        assert!(err.to_string().contains("surge_rate"), "{err}");
        let err = FaultScenario::from_json_str(r#"{"market_halt_rate": -0.1}"#).unwrap_err();
        assert!(err.to_string().contains("market_halt_rate"), "{err}");
    }

    #[test]
    fn non_object_and_garbage_are_rejected() {
        assert!(FaultScenario::from_json_str("[1, 2]").is_err());
        assert!(FaultScenario::from_json_str("{not json").is_err());
    }

    #[test]
    fn inverted_backoff_is_rejected() {
        let err =
            FaultScenario::from_json_str(r#"{"backoff_base_slots": 9, "backoff_cap_slots": 2}"#)
                .unwrap_err();
        assert!(err.to_string().contains("backoff_cap_slots"), "{err}");
    }
}
