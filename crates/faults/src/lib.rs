//! Deterministic, seeded fault injection for the carbon-edge stack.
//!
//! The paper's guarantees (Theorems 1–3) assume every slot delivers
//! clean loss feedback, every model download succeeds, and the
//! allowance market always clears. Production edge fleets violate all
//! three: edges drop out, downloads fail, demand surges, and markets
//! halt or reject orders. This crate provides the *fault plane* the
//! simulator injects those events from, plus the graceful-degradation
//! primitives the control stack uses to ride them out:
//!
//! * [`FaultScenario`] — a declarative description of fault rates and
//!   retry parameters, loadable from a JSON file (`--faults` in the
//!   CLI).
//! * [`FaultSchedule`] — the scenario *realized* against a seed: every
//!   per-edge-per-slot and per-slot fault draw is made once, up front,
//!   from a dedicated RNG stream derived off the run seed. Because the
//!   schedule is pre-realized in a fixed order, a given
//!   `(seed, scenario)` pair is bit-identical across driver thread
//!   counts and serve modes.
//! * [`Backoff`] — the shared bounded exponential backoff rule used by
//!   download retries and market resubmissions. It is a pure function
//!   of the attempt number, hence trivially deterministic.
//! * [`TradeCarry`] — the carry-forward account for unmet market
//!   positions: when the market halts or rejects an order, the
//!   requested allowances are not dropped but carried into the next
//!   attempt, so the carbon-neutrality ledger never silently leaks
//!   (`requested == executed + unmet` holds at settlement).
//!
//! The plane is intentionally independent of the simulator: it only
//! answers "does fault X fire at (edge, slot)?" and bookkeeps retries.
//! Degradation *semantics* (serve the stale model, skip the
//! importance-weighted update, defer the switch cost) live with the
//! components that degrade.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod retry;
mod scenario;
mod schedule;

pub use retry::{Backoff, TradeCarry, TradeCarryParts, WallRetry};
pub use scenario::{FaultScenario, ScenarioError};
pub use schedule::FaultSchedule;
