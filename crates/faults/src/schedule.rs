//! Pre-realized fault schedules.

use cne_util::SeedSequence;
use rand::Rng;

use crate::FaultScenario;

/// A [`FaultScenario`] realized against a seed: every fault draw for a
/// `num_edges × horizon` run, made once, up front, in a fixed order.
///
/// Determinism contract: the schedule is a pure function of
/// `(scenario, num_edges, horizon, seed)`. Draws are consumed
/// edge-major for the per-edge classes (edge 0's slots, then edge 1's,
/// …), then slot-by-slot for the market classes, and **every draw is
/// consumed whether or not its rate is zero** — so two scenarios that
/// differ only in rates see *common random numbers*: raising one rate
/// never reshuffles which other (edge, slot) pairs fault, which makes
/// fault-rate sweeps monotone-comparable. A zero-rate scenario realizes
/// a schedule that never fires anywhere.
///
/// The simulator derives the stream as `seed.derive("faults")`, a
/// dedicated label no other subsystem uses, so attaching a scenario
/// never perturbs topology, workload, price, or stream realizations.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    scenario: FaultScenario,
    num_edges: usize,
    horizon: usize,
    /// Per-(edge, slot) draws, flattened as `i * horizon + t`.
    edge_outage: Vec<bool>,
    surge: Vec<bool>,
    download_failure: Vec<bool>,
    feedback_loss: Vec<bool>,
    /// Per-slot draws.
    market_halt: Vec<bool>,
    order_rejection: Vec<bool>,
}

impl FaultSchedule {
    /// Realizes `scenario` for a `num_edges × horizon` run.
    ///
    /// # Panics
    /// Panics if the scenario does not validate or the grid is empty.
    #[must_use]
    pub fn realize(
        scenario: FaultScenario,
        num_edges: usize,
        horizon: usize,
        seed: &SeedSequence,
    ) -> Self {
        scenario
            .validate()
            .unwrap_or_else(|e| panic!("invalid fault scenario: {e}"));
        assert!(num_edges > 0 && horizon > 0, "empty fault grid");
        let mut rng = seed.derive("fault-schedule").rng();
        let cells = num_edges * horizon;
        let mut edge_outage = Vec::with_capacity(cells);
        let mut surge = Vec::with_capacity(cells);
        let mut download_failure = Vec::with_capacity(cells);
        let mut feedback_loss = Vec::with_capacity(cells);
        for _ in 0..cells {
            edge_outage.push(rng.gen::<f64>() < scenario.edge_outage_rate);
            surge.push(rng.gen::<f64>() < scenario.surge_rate);
            download_failure.push(rng.gen::<f64>() < scenario.download_failure_rate);
            feedback_loss.push(rng.gen::<f64>() < scenario.feedback_loss_rate);
        }
        let mut market_halt = Vec::with_capacity(horizon);
        let mut order_rejection = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            market_halt.push(rng.gen::<f64>() < scenario.market_halt_rate);
            order_rejection.push(rng.gen::<f64>() < scenario.order_rejection_rate);
        }
        Self {
            scenario,
            num_edges,
            horizon,
            edge_outage,
            surge,
            download_failure,
            feedback_loss,
            market_halt,
            order_rejection,
        }
    }

    /// The scenario this schedule realizes.
    #[must_use]
    pub fn scenario(&self) -> &FaultScenario {
        &self.scenario
    }

    #[inline]
    fn cell(&self, i: usize, t: usize) -> usize {
        assert!(
            i < self.num_edges && t < self.horizon,
            "fault query out of range"
        );
        i * self.horizon + t
    }

    /// Is edge `i` down during slot `t`?
    #[must_use]
    pub fn edge_outage(&self, i: usize, t: usize) -> bool {
        self.edge_outage[self.cell(i, t)]
    }

    /// Does edge `i`'s workload surge during slot `t`?
    #[must_use]
    pub fn surge(&self, i: usize, t: usize) -> bool {
        self.surge[self.cell(i, t)]
    }

    /// Does a download attempt on edge `i` at slot `t` fail?
    #[must_use]
    pub fn download_failure(&self, i: usize, t: usize) -> bool {
        self.download_failure[self.cell(i, t)]
    }

    /// Is edge `i`'s slot-`t` loss report lost in transit?
    #[must_use]
    pub fn feedback_loss(&self, i: usize, t: usize) -> bool {
        self.feedback_loss[self.cell(i, t)]
    }

    /// Is the allowance market halted during slot `t`?
    ///
    /// # Panics
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn market_halted(&self, t: usize) -> bool {
        self.market_halt[t]
    }

    /// Does the market reject slot `t`'s orders?
    ///
    /// # Panics
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn order_rejected(&self, t: usize) -> bool {
        self.order_rejection[t]
    }

    /// Total number of scheduled fault draws that fired, per class:
    /// `(outages, surges, download failures, feedback losses,
    /// market halts, order rejections)`.
    #[must_use]
    pub fn fired_counts(&self) -> (u64, u64, u64, u64, u64, u64) {
        let count = |v: &[bool]| v.iter().filter(|&&b| b).count() as u64;
        (
            count(&self.edge_outage),
            count(&self.surge),
            count(&self.download_failure),
            count(&self.feedback_loss),
            count(&self.market_halt),
            count(&self.order_rejection),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn realize(rate: f64, seed: u64) -> FaultSchedule {
        FaultSchedule::realize(
            FaultScenario::mixed("t", rate),
            4,
            50,
            &SeedSequence::new(seed),
        )
    }

    #[test]
    fn zero_rate_never_fires() {
        let s = realize(0.0, 7);
        assert_eq!(s.fired_counts(), (0, 0, 0, 0, 0, 0));
    }

    #[test]
    fn full_rate_always_fires() {
        let s = realize(1.0, 7);
        let (o, su, d, f, m, r) = s.fired_counts();
        assert_eq!((o, su, d, f), (200, 200, 200, 200));
        assert_eq!((m, r), (50, 50));
    }

    #[test]
    fn same_seed_same_schedule() {
        assert_eq!(realize(0.3, 42), realize(0.3, 42));
        assert_ne!(realize(0.3, 42), realize(0.3, 43));
    }

    #[test]
    fn moderate_rate_fires_roughly_proportionally() {
        let s = realize(0.25, 11);
        let (o, ..) = s.fired_counts();
        // 200 draws at p = 0.25: expect ~50, allow a wide band.
        assert!((20..=85).contains(&(o as usize)), "outages: {o}");
    }

    proptest! {
        /// Common random numbers: raising one rate never changes where
        /// the *other* classes fire, and a fired cell at rate p still
        /// fires at any higher rate.
        #[test]
        fn rates_share_common_random_numbers(seed in 0u64..500, lo in 0.05f64..0.5) {
            let hi = (lo * 2.0).min(1.0);
            let a = FaultSchedule::realize(
                FaultScenario { edge_outage_rate: lo, ..FaultScenario::default() },
                3, 20, &SeedSequence::new(seed));
            let b = FaultSchedule::realize(
                FaultScenario { edge_outage_rate: hi, market_halt_rate: 0.5,
                                ..FaultScenario::default() },
                3, 20, &SeedSequence::new(seed));
            for i in 0..3 {
                for t in 0..20 {
                    if a.edge_outage(i, t) {
                        prop_assert!(b.edge_outage(i, t), "outage set must grow with the rate");
                    }
                }
            }
        }
    }
}
