//! Property-based tests for the trading crate: the offline greedy is
//! optimal (it matches the simplex), online policies always emit
//! feasible finite decisions, and the simplex solver's solutions are
//! feasible.

use cne_market::TradeBounds;
use cne_trading::lp::{ConstraintOp, LinearProgram};
use cne_trading::offline::{offline_optimal_trades, offline_optimal_trades_lp};
use cne_trading::policy::{TradeContext, TradeObservation, TradingPolicy};
use cne_trading::{Lyapunov, LyapunovConfig, PrimalDual, PrimalDualConfig};
use cne_util::units::{Allowances, PricePerAllowance};
use proptest::prelude::*;

fn price_pair() -> impl Strategy<Value = (f64, f64)> {
    (5.9..10.9f64).prop_map(|c| (c, 0.9 * c))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The parametric greedy matches the dense simplex exactly (up to
    /// numerics) on random instances, including infeasibility.
    #[test]
    fn offline_greedy_matches_simplex(
        prices in proptest::collection::vec(price_pair(), 2..10),
        deficit in -30.0..40.0f64,
        max_buy in 0.5..6.0f64,
        max_sell in 0.0..4.0f64,
    ) {
        let buy: Vec<f64> = prices.iter().map(|p| p.0).collect();
        let sell: Vec<f64> = prices.iter().map(|p| p.1).collect();
        let greedy = offline_optimal_trades(&buy, &sell, deficit, max_buy, max_sell);
        let lp = offline_optimal_trades_lp(&buy, &sell, deficit, max_buy, max_sell);
        match (greedy, lp) {
            (Ok(g), Ok(l)) => {
                prop_assert!(
                    (g.cost - l.cost).abs() < 1e-6 * (1.0 + g.cost.abs()),
                    "greedy {} vs simplex {}", g.cost, l.cost
                );
                prop_assert!(g.net() >= deficit - 1e-8);
                for t in 0..buy.len() {
                    prop_assert!((0.0..=max_buy + 1e-9).contains(&g.buys[t]));
                    prop_assert!((0.0..=max_sell + 1e-9).contains(&g.sells[t]));
                }
            }
            (Err(_), Err(_)) => {}
            (g, l) => prop_assert!(false, "feasibility disagreement: {:?} vs {:?}", g, l),
        }
    }

    /// Algorithm 2 always proposes finite non-negative trades within
    /// the feasible box, for arbitrary price/emission streams.
    #[test]
    fn primal_dual_stays_feasible(
        stream in proptest::collection::vec((price_pair(), 0.0..20.0f64), 1..100),
        cap_share in 0.1..10.0f64,
        gamma1 in 0.01..5.0f64,
        gamma2 in 0.01..5.0f64,
    ) {
        let bounds = TradeBounds::new(Allowances::new(15.0), Allowances::new(7.0));
        let mut alg = PrimalDual::new(PrimalDualConfig::new(gamma1, gamma2));
        for (t, &((c, r), e)) in stream.iter().enumerate() {
            let ctx = TradeContext {
                buy_price: PricePerAllowance::new(c),
                sell_price: PricePerAllowance::new(r),
                cap_share,
                bounds,
            };
            let (z, w) = alg.decide(t, &ctx);
            prop_assert!(z.get().is_finite() && w.get().is_finite());
            prop_assert!((0.0..=15.0).contains(&z.get()));
            prop_assert!((0.0..=7.0).contains(&w.get()));
            prop_assert!(alg.lambda() >= 0.0 && alg.lambda().is_finite());
            alg.observe(t, &TradeObservation {
                emissions: e,
                bought: z,
                sold: w,
                buy_price: ctx.buy_price,
                sell_price: ctx.sell_price,
                cap_share,
            });
        }
    }

    /// The Lyapunov queue is a non-negative positive-part recursion.
    #[test]
    fn lyapunov_queue_nonnegative(
        stream in proptest::collection::vec((price_pair(), 0.0..20.0f64), 1..100),
        v in 0.1..5.0f64,
    ) {
        let bounds = TradeBounds::new(Allowances::new(15.0), Allowances::new(7.0));
        let mut alg = Lyapunov::new(LyapunovConfig::new(v, 0.0));
        for (t, &((c, r), e)) in stream.iter().enumerate() {
            let ctx = TradeContext {
                buy_price: PricePerAllowance::new(c),
                sell_price: PricePerAllowance::new(r),
                cap_share: 3.0,
                bounds,
            };
            let (z, w) = alg.decide(t, &ctx);
            alg.observe(t, &TradeObservation {
                emissions: e,
                bought: z,
                sold: w,
                buy_price: ctx.buy_price,
                sell_price: ctx.sell_price,
                cap_share: 3.0,
            });
            prop_assert!(alg.queue() >= 0.0);
        }
    }

    /// Simplex solutions satisfy all their constraints.
    #[test]
    fn simplex_solutions_feasible(
        c in proptest::collection::vec(-5.0..5.0f64, 2..5),
        rows in proptest::collection::vec(
            (proptest::collection::vec(-3.0..3.0f64, 2..5), 0.0..10.0f64),
            1..5
        ),
    ) {
        let n = c.len();
        let mut lp = LinearProgram::new(c);
        let mut used = Vec::new();
        for (coeffs, rhs) in rows {
            let mut row = coeffs;
            row.resize(n, 0.0);
            lp.add_constraint(row.clone(), ConstraintOp::Le, rhs);
            used.push((row, rhs));
        }
        // Box the variables to keep the LP bounded.
        for j in 0..n {
            let mut row = vec![0.0; n];
            row[j] = 1.0;
            lp.add_constraint(row.clone(), ConstraintOp::Le, 10.0);
            used.push((row, 10.0));
        }
        if let Ok(sol) = lp.solve() {
            for (row, rhs) in used {
                let lhs: f64 = row.iter().zip(&sol.x).map(|(a, x)| a * x).sum();
                prop_assert!(lhs <= rhs + 1e-6, "violated: {} > {}", lhs, rhs);
            }
            prop_assert!(sol.x.iter().all(|&x| x >= -1e-9));
        }
    }
}
