//! Static price-threshold baseline.
//!
//! "At each `t`, a fixed quantity is bought when `c^t` is below some
//! value and a fixed quantity is sold when `r^t` is above some value"
//! (paper §V-A). Oblivious to workload, emissions, and the cap.

use cne_util::units::{Allowances, PricePerAllowance};

use crate::policy::{TradeContext, TradeObservation, TradingPolicy};

/// Threshold trader configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdConfig {
    /// Buy when the posted buy price is at or below this value.
    pub buy_below: PricePerAllowance,
    /// Sell when the posted sell price is at or above this value.
    pub sell_above: PricePerAllowance,
    /// Fixed quantity bought on a triggered slot.
    pub buy_quantity: Allowances,
    /// Fixed quantity sold on a triggered slot.
    pub sell_quantity: Allowances,
}

impl ThresholdConfig {
    /// A configuration calibrated to the EU ETS band `[5.9, 10.9]`:
    /// buys `quantity` in the cheapest ~30% of the band and sells a
    /// quarter of that in the top ~10% of the sell band.
    #[must_use]
    pub fn for_band(quantity: Allowances) -> Self {
        Self {
            buy_below: PricePerAllowance::new(7.4),
            sell_above: PricePerAllowance::new(9.0),
            buy_quantity: quantity,
            sell_quantity: quantity * 0.25,
        }
    }
}

/// The threshold trader.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Threshold {
    config: ThresholdConfig,
}

impl Threshold {
    /// Creates the trader.
    #[must_use]
    pub fn new(config: ThresholdConfig) -> Self {
        Self { config }
    }
}

impl TradingPolicy for Threshold {
    fn decide(&mut self, _t: usize, ctx: &TradeContext) -> (Allowances, Allowances) {
        let z = if ctx.buy_price.get() <= self.config.buy_below.get() {
            self.config.buy_quantity
        } else {
            Allowances::ZERO
        };
        let w = if ctx.sell_price.get() >= self.config.sell_above.get() {
            self.config.sell_quantity
        } else {
            Allowances::ZERO
        };
        (z, w)
    }

    fn observe(&mut self, _t: usize, _obs: &TradeObservation) {}

    fn name(&self) -> &'static str {
        "threshold"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cne_market::TradeBounds;

    fn ctx(c: f64, r: f64) -> TradeContext {
        TradeContext {
            buy_price: PricePerAllowance::new(c),
            sell_price: PricePerAllowance::new(r),
            cap_share: 3.0,
            bounds: TradeBounds::new(Allowances::new(50.0), Allowances::new(50.0)),
        }
    }

    #[test]
    fn buys_only_below_threshold() {
        let mut alg = Threshold::new(ThresholdConfig::for_band(Allowances::new(4.0)));
        let (z, _) = alg.decide(0, &ctx(7.0, 6.3));
        assert_eq!(z.get(), 4.0);
        let (z, _) = alg.decide(1, &ctx(8.0, 7.2));
        assert_eq!(z.get(), 0.0);
    }

    #[test]
    fn sells_only_above_threshold() {
        let mut alg = Threshold::new(ThresholdConfig::for_band(Allowances::new(4.0)));
        let (_, w) = alg.decide(0, &ctx(10.5, 9.45));
        assert_eq!(w.get(), 1.0);
        let (_, w) = alg.decide(1, &ctx(9.0, 8.1));
        assert_eq!(w.get(), 0.0);
    }

    #[test]
    fn ignores_observations() {
        let mut alg = Threshold::new(ThresholdConfig::for_band(Allowances::new(4.0)));
        let before = alg;
        alg.observe(
            0,
            &TradeObservation {
                emissions: 100.0,
                bought: Allowances::ZERO,
                sold: Allowances::ZERO,
                buy_price: PricePerAllowance::new(8.0),
                sell_price: PricePerAllowance::new(7.2),
                cap_share: 3.0,
            },
        );
        assert_eq!(alg, before, "threshold trader is stateless");
    }
}
