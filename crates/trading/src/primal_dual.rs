//! Algorithm 2: long-term-aware online primal–dual carbon trading.
//!
//! The long-term constraint is absorbed into the Lagrangian
//! `L^t(Z, λ) = f^t(Z) + λ g^t(Z)` and solved by alternating steps
//! (paper equations (4)–(5)):
//!
//! * **primal** (decide `Z̄^t` at the start of slot `t`):
//!
//!   ```text
//!   Z̄^t = argmin_{Z ∈ X̄}  ∇f^{t−1}(Z̄^{t−1})·(Z − Z̄^{t−1})
//!                          + λ^t g^{t−1}(Z)
//!                          + ‖Z − Z̄^{t−1}‖² / (2 γ₂)
//!   ```
//!
//!   Note the *rectified* step: the actual previous constraint function
//!   `g^{t−1}` is penalized (it is already linear in `Z`), not a
//!   first-order surrogate, and a proximal term anchors the update.
//!   With `f` linear and `g` linear, the minimizer is the closed-form
//!   box projection
//!
//!   ```text
//!   z^t = clamp( z^{t−1} − γ₂ (c^{t−1} − λ^t), 0, Z_max )
//!   w^t = clamp( w^{t−1} − γ₂ (λ^t − r^{t−1}), 0, W_max )
//!   ```
//!
//! * **dual** (after observing slot `t`):
//!   `λ^{t+1} = [λ^t + γ₁ g^t(Z̄^t)]⁺`.
//!
//! No information about future prices or emissions is used. Theorem 2
//! gives `O(T^{2/3})` regret and fit with `γ₁, γ₂ ∝ T^{−1/3}`.

use cne_util::json::Json;
use cne_util::units::Allowances;

use crate::policy::{TradeContext, TradeObservation, TradingPolicy};

/// Step sizes of Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrimalDualConfig {
    /// Dual ascent step `γ₁` (price units per allowance of violation).
    pub gamma1: f64,
    /// Primal proximal step `γ₂` (allowances per price unit).
    pub gamma2: f64,
}

impl PrimalDualConfig {
    /// Explicit step sizes.
    ///
    /// # Panics
    /// Panics unless both steps are positive and finite.
    #[must_use]
    pub fn new(gamma1: f64, gamma2: f64) -> Self {
        assert!(
            gamma1 > 0.0 && gamma1.is_finite(),
            "gamma1 must be positive"
        );
        assert!(
            gamma2 > 0.0 && gamma2.is_finite(),
            "gamma2 must be positive"
        );
        Self { gamma1, gamma2 }
    }

    /// The Theorem 2 schedule `γ₁, γ₂ ∝ T^{−1/3}`, dimensionally scaled:
    /// `price_scale` is a typical allowance price (cents) and
    /// `trade_scale` a typical per-slot trade volume (allowances), so
    /// that the dual variable λ lives on the price scale and primal
    /// moves live on the volume scale.
    ///
    /// # Panics
    /// Panics if `horizon` is zero or a scale is not positive.
    #[must_use]
    pub fn theorem2(horizon: usize, price_scale: f64, trade_scale: f64) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        assert!(
            price_scale > 0.0 && trade_scale > 0.0,
            "scales must be positive"
        );
        let t13 = (horizon as f64).powf(-1.0 / 3.0);
        Self {
            gamma1: (price_scale / trade_scale) * t13 * 4.0,
            gamma2: (trade_scale / price_scale) * t13 * 4.0,
        }
    }
}

/// The paper's Algorithm 2.
///
/// # Examples
///
/// Driving the policy by hand through one slot. The first decision is
/// always `(0, 0)` (no history yet); observing a violating slot raises
/// the dual variable λ, which prices future allowance purchases:
///
/// ```
/// use cne_market::TradeBounds;
/// use cne_trading::policy::{TradeContext, TradeObservation, TradingPolicy};
/// use cne_trading::{PrimalDual, PrimalDualConfig};
/// use cne_util::units::{Allowances, PricePerAllowance};
///
/// let mut alg = PrimalDual::new(PrimalDualConfig::new(0.5, 0.25));
/// let ctx = TradeContext {
///     buy_price: PricePerAllowance::new(8.0),
///     sell_price: PricePerAllowance::new(7.2),
///     cap_share: 3.0,
///     bounds: TradeBounds::new(Allowances::new(10.0), Allowances::new(10.0)),
/// };
/// let (z0, w0) = alg.decide(0, &ctx);
/// assert_eq!((z0.get(), w0.get()), (0.0, 0.0));
///
/// // Slot 0 emitted 5 allowances against a cap share of 3: g = 2.
/// alg.observe(0, &TradeObservation {
///     emissions: 5.0,
///     bought: z0,
///     sold: w0,
///     buy_price: ctx.buy_price,
///     sell_price: ctx.sell_price,
///     cap_share: ctx.cap_share,
/// });
/// assert!((alg.lambda() - 1.0).abs() < 1e-12); // λ ← [0 + 0.5·2]⁺
/// ```
#[derive(Debug, Clone)]
pub struct PrimalDual {
    config: PrimalDualConfig,
    /// Previous primal decision `Z̄^{t−1}`.
    z_prev: f64,
    w_prev: f64,
    /// Dual variable `λ^t`.
    lambda: f64,
    /// `c^{t−1}` / `r^{t−1}` from the last observation.
    prev_buy_price: Option<f64>,
    prev_sell_price: Option<f64>,
    /// `(t, λ^{t+1})` after each dual update — the shadow-price
    /// trajectory dumped into telemetry for the `report` diagnostics.
    trajectory: Vec<(u64, f64)>,
}

impl PrimalDual {
    /// Creates the policy with `Z̄⁰ = (0, 0)` and `λ¹ = 0`
    /// (Algorithm 2's initialization).
    #[must_use]
    pub fn new(config: PrimalDualConfig) -> Self {
        Self {
            config,
            z_prev: 0.0,
            w_prev: 0.0,
            lambda: 0.0,
            prev_buy_price: None,
            prev_sell_price: None,
            trajectory: Vec::new(),
        }
    }

    /// As [`PrimalDual::new`], pre-reserving the λ-trajectory buffer
    /// for a known horizon so the per-slot dual update never
    /// reallocates mid-run.
    #[must_use]
    pub fn with_horizon(config: PrimalDualConfig, horizon: usize) -> Self {
        let mut s = Self::new(config);
        s.trajectory.reserve_exact(horizon);
        s
    }

    /// The current dual variable `λ` (the shadow carbon price).
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The dual-variable trajectory: `(t, λ^{t+1})` after each
    /// observed slot.
    #[must_use]
    pub fn lambda_trajectory(&self) -> &[(u64, f64)] {
        &self.trajectory
    }

    /// The step sizes in use.
    #[must_use]
    pub fn config(&self) -> PrimalDualConfig {
        self.config
    }
}

impl PrimalDual {
    /// The rectified proximal primal step (eq. (4)'s closed form).
    fn primal_step(&mut self, ctx: &TradeContext) -> (Allowances, Allowances) {
        let (z, w) = match (self.prev_buy_price, self.prev_sell_price) {
            // First slot: no history yet, stay at Z̄⁰.
            (None, _) | (_, None) => (self.z_prev, self.w_prev),
            (Some(c_prev), Some(r_prev)) => {
                let z = (self.z_prev - self.config.gamma2 * (c_prev - self.lambda))
                    .clamp(0.0, ctx.bounds.max_buy.get());
                let w = (self.w_prev - self.config.gamma2 * (self.lambda - r_prev))
                    .clamp(0.0, ctx.bounds.max_sell.get());
                (z, w)
            }
        };
        self.z_prev = z;
        self.w_prev = w;
        (Allowances::new(z), Allowances::new(w))
    }
}

impl TradingPolicy for PrimalDual {
    fn decide(&mut self, _t: usize, ctx: &TradeContext) -> (Allowances, Allowances) {
        self.primal_step(ctx)
    }

    fn decide_profiled(
        &mut self,
        _t: usize,
        ctx: &TradeContext,
        profiler: &mut cne_util::span::Profiler,
    ) -> (Allowances, Allowances) {
        profiler.enter("primal_step");
        let zw = self.primal_step(ctx);
        profiler.exit();
        zw
    }

    fn observe(&mut self, t: usize, obs: &TradeObservation) {
        // Dual ascent on the realized constraint value (eq. (5)).
        let g = obs.constraint_value();
        self.lambda = (self.lambda + self.config.gamma1 * g).max(0.0);
        self.trajectory.push((t as u64, self.lambda));
        self.prev_buy_price = Some(obs.buy_price.get());
        self.prev_sell_price = Some(obs.sell_price.get());
    }

    fn name(&self) -> &'static str {
        "primal-dual"
    }

    fn lambda(&self) -> Option<f64> {
        Some(self.lambda)
    }

    fn record_telemetry(&self, rec: &mut cne_util::telemetry::Recorder) {
        for &(t, lambda) in &self.trajectory {
            rec.event(Some(t), "lambda", &[("value", lambda.into())]);
        }
        rec.gauge("trader.lambda", self.lambda);
        rec.gauge("trader.z_prev", self.z_prev);
        rec.gauge("trader.w_prev", self.w_prev);
    }

    fn export_state(&self) -> Result<Json, String> {
        let opt = |v: Option<f64>| v.map_or(Json::Null, Json::Float);
        Ok(Json::Obj(vec![
            ("kind".into(), Json::Str("primal-dual".into())),
            ("z_prev".into(), Json::Float(self.z_prev)),
            ("w_prev".into(), Json::Float(self.w_prev)),
            ("lambda".into(), Json::Float(self.lambda)),
            ("prev_buy_price".into(), opt(self.prev_buy_price)),
            ("prev_sell_price".into(), opt(self.prev_sell_price)),
            (
                "trajectory".into(),
                Json::Arr(
                    self.trajectory
                        .iter()
                        .map(|&(t, l)| Json::Arr(vec![Json::UInt(t), Json::Float(l)]))
                        .collect(),
                ),
            ),
        ]))
    }

    fn import_state(&mut self, state: &Json) -> Result<(), String> {
        if state.get("kind").and_then(Json::as_str) != Some("primal-dual") {
            return Err("trading state is not a primal-dual snapshot".into());
        }
        let float = |key: &str| -> Result<f64, String> {
            state
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("trading state is missing number '{key}'"))
        };
        let opt = |key: &str| -> Result<Option<f64>, String> {
            match state.get(key) {
                None => Err(format!("trading state is missing '{key}'")),
                Some(Json::Null) => Ok(None),
                Some(v) => v
                    .as_f64()
                    .map(Some)
                    .ok_or_else(|| format!("non-numeric '{key}'")),
            }
        };
        let trajectory = state
            .get("trajectory")
            .and_then(Json::as_array)
            .ok_or_else(|| "trading state is missing 'trajectory'".to_owned())?
            .iter()
            .map(|pair| {
                let items = pair.as_array().filter(|a| a.len() == 2);
                let items = items.ok_or_else(|| "malformed trajectory entry".to_owned())?;
                let t = items[0]
                    .as_u64()
                    .ok_or_else(|| "malformed trajectory slot".to_owned())?;
                let l = items[1]
                    .as_f64()
                    .ok_or_else(|| "malformed trajectory value".to_owned())?;
                Ok((t, l))
            })
            .collect::<Result<Vec<_>, String>>()?;
        self.z_prev = float("z_prev")?;
        self.w_prev = float("w_prev")?;
        self.lambda = float("lambda")?;
        self.prev_buy_price = opt("prev_buy_price")?;
        self.prev_sell_price = opt("prev_sell_price")?;
        self.trajectory = trajectory;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cne_market::TradeBounds;
    use cne_util::units::PricePerAllowance;

    fn ctx(c: f64, r: f64, cap_share: f64) -> TradeContext {
        TradeContext {
            buy_price: PricePerAllowance::new(c),
            sell_price: PricePerAllowance::new(r),
            cap_share,
            bounds: TradeBounds::new(Allowances::new(10.0), Allowances::new(10.0)),
        }
    }

    fn obs(z: f64, w: f64, e: f64, c: f64, r: f64, cap_share: f64) -> TradeObservation {
        TradeObservation {
            emissions: e,
            bought: Allowances::new(z),
            sold: Allowances::new(w),
            buy_price: PricePerAllowance::new(c),
            sell_price: PricePerAllowance::new(r),
            cap_share,
        }
    }

    /// Runs the policy against constant prices/emissions and returns
    /// cumulative (bought, sold, violation of Σg ≤ 0).
    fn run_constant(
        emissions: f64,
        cap_share: f64,
        horizon: usize,
        cfg: PrimalDualConfig,
    ) -> (f64, f64, f64) {
        let mut alg = PrimalDual::new(cfg);
        let mut total_z = 0.0;
        let mut total_w = 0.0;
        let mut sum_g = 0.0;
        for t in 0..horizon {
            let c = ctx(8.0, 7.2, cap_share);
            let (z, w) = alg.decide(t, &c);
            total_z += z.get();
            total_w += w.get();
            let o = obs(z.get(), w.get(), emissions, 8.0, 7.2, cap_share);
            sum_g += o.constraint_value();
            alg.observe(t, &o);
        }
        (total_z, total_w, sum_g.max(0.0))
    }

    #[test]
    fn primal_step_matches_closed_form() {
        let cfg = PrimalDualConfig::new(0.5, 0.25);
        let mut alg = PrimalDual::new(cfg);
        let c = ctx(8.0, 7.2, 3.0);
        // t = 0: no history → (0, 0).
        let (z0, w0) = alg.decide(0, &c);
        assert_eq!((z0.get(), w0.get()), (0.0, 0.0));
        // Observe a violating slot: g = 5 − 3 − 0 + 0 = 2 → λ = 1.0.
        alg.observe(0, &obs(0.0, 0.0, 5.0, 8.0, 7.2, 3.0));
        assert!((alg.lambda() - 1.0).abs() < 1e-12);
        // t = 1: z = clamp(0 − 0.25(8 − 1)) = 0; w = clamp(0 − 0.25(1 − 7.2)) = 1.55.
        let (z1, w1) = alg.decide(1, &c);
        assert!((z1.get() - 0.0).abs() < 1e-12);
        assert!((w1.get() - 1.55).abs() < 1e-12);
    }

    #[test]
    fn dual_variable_is_nonnegative() {
        let mut alg = PrimalDual::new(PrimalDualConfig::new(1.0, 1.0));
        // Strongly satisfied constraint drives λ toward 0, never below.
        for t in 0..10 {
            let c = ctx(8.0, 7.2, 10.0);
            let (z, w) = alg.decide(t, &c);
            alg.observe(t, &obs(z.get(), w.get(), 0.0, 8.0, 7.2, 10.0));
            assert!(alg.lambda() >= 0.0);
        }
        assert_eq!(alg.lambda(), 0.0);
    }

    #[test]
    fn covers_persistent_deficit() {
        // Emissions exceed the cap share by 2 every slot; the policy
        // must end up buying roughly the deficit.
        let horizon = 400;
        let cfg = PrimalDualConfig::theorem2(horizon, 8.0, 5.0);
        let (z, w, violation) = run_constant(5.0, 3.0, horizon, cfg);
        let deficit = 2.0 * horizon as f64;
        let net = z - w;
        assert!(
            (net - deficit).abs() < 0.25 * deficit,
            "net purchases {net} should approach the deficit {deficit}"
        );
        // Time-averaged violation must be small (sub-linear fit).
        let avg_violation = violation / horizon as f64;
        assert!(
            avg_violation < 0.5,
            "time-averaged violation too large: {avg_violation}"
        );
    }

    #[test]
    fn surplus_gets_sold() {
        // Emissions far below the cap share: the policy should sell.
        let horizon = 400;
        let cfg = PrimalDualConfig::theorem2(horizon, 8.0, 5.0);
        let (z, w, _) = run_constant(0.5, 3.0, horizon, cfg);
        assert!(w > z, "should be a net seller: bought {z}, sold {w}");
    }

    #[test]
    fn lambda_tracks_price_scale_under_deficit() {
        let horizon = 600;
        let cfg = PrimalDualConfig::theorem2(horizon, 8.0, 5.0);
        let mut alg = PrimalDual::new(cfg);
        for t in 0..horizon {
            let c = ctx(8.0, 7.2, 3.0);
            let (z, w) = alg.decide(t, &c);
            alg.observe(t, &obs(z.get(), w.get(), 5.0, 8.0, 7.2, 3.0));
        }
        // In steady state the shadow price settles near the market
        // price band (λ ≈ c makes buying marginal).
        assert!(
            (4.0..=14.0).contains(&alg.lambda()),
            "λ off the price scale: {}",
            alg.lambda()
        );
    }

    #[test]
    fn buys_more_when_prices_drop() {
        // Two-phase price series: expensive then cheap, with deficit.
        let horizon = 600;
        let cfg = PrimalDualConfig::theorem2(horizon, 8.0, 5.0);
        let mut alg = PrimalDual::new(cfg);
        let mut bought_dear = 0.0;
        let mut bought_cheap = 0.0;
        for t in 0..horizon {
            let price = if t % 2 == 0 { 10.5 } else { 6.0 };
            let c = ctx(price, price * 0.9, 3.0);
            let (z, w) = alg.decide(t, &c);
            // Decision at t uses price of t−1; attribute to that price.
            if t > 0 {
                let prev_price = if (t - 1) % 2 == 0 { 10.5 } else { 6.0 };
                if prev_price > 8.0 {
                    bought_dear += z.get();
                } else {
                    bought_cheap += z.get();
                }
            }
            alg.observe(t, &obs(z.get(), w.get(), 5.0, price, price * 0.9, 3.0));
        }
        assert!(
            bought_cheap > bought_dear,
            "should buy more after cheap slots: cheap {bought_cheap} vs dear {bought_dear}"
        );
    }

    #[test]
    #[should_panic(expected = "gamma1")]
    fn rejects_bad_steps() {
        let _ = PrimalDualConfig::new(0.0, 1.0);
    }

    #[test]
    fn export_import_resumes_bit_identically() {
        let horizon = 50;
        for k in [1usize, 20, horizon - 1] {
            let cfg = PrimalDualConfig::theorem2(horizon, 8.0, 5.0);
            let mut reference = PrimalDual::new(cfg);
            let mut halted = PrimalDual::new(cfg);
            for t in 0..horizon {
                if t == k {
                    let snap = halted.export_state().expect("export");
                    let text = snap.encode();
                    let reparsed = cne_util::json::parse(&text).expect("parse");
                    assert_eq!(reparsed.encode(), text, "snapshot not byte-stable");
                    let mut resumed = PrimalDual::new(cfg);
                    resumed.import_state(&reparsed).expect("import");
                    halted = resumed;
                }
                let price = 6.0 + ((t * 3) % 5) as f64;
                let c = ctx(price, price * 0.9, 3.0);
                let (za, wa) = reference.decide(t, &c);
                let (zb, wb) = halted.decide(t, &c);
                assert_eq!(
                    (za, wa),
                    (zb, wb),
                    "trades diverged at slot {t} (resume {k})"
                );
                let o = obs(za.get(), wa.get(), 5.0, price, price * 0.9, 3.0);
                reference.observe(t, &o);
                halted.observe(t, &o);
            }
            assert_eq!(reference.lambda(), halted.lambda());
            assert_eq!(reference.lambda_trajectory(), halted.lambda_trajectory());
        }
    }

    #[test]
    fn import_rejects_foreign_snapshots() {
        let mut alg = PrimalDual::new(PrimalDualConfig::new(0.5, 0.25));
        let bad = cne_util::json::parse("{\"kind\":\"other\"}").unwrap();
        assert!(alg.import_state(&bad).is_err());
    }
}
