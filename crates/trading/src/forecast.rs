//! One-step-ahead price forecasting (the paper's first future-work
//! item: "integrating price prediction models could further optimize
//! trading strategies").
//!
//! Algorithm 2 is deliberately prediction-free: its primal step uses
//! the *last observed* price `c^{t−1}` as the gradient of `f^{t−1}`.
//! The forecasters here provide a drop-in surrogate `ĉ^t` for that
//! role:
//!
//! * [`EwmaForecaster`] — exponentially weighted moving average;
//! * [`Ar1Forecaster`] — an AR(1) model `c^t ≈ μ + ϕ(c^{t−1} − μ)`
//!   fitted online by recursive least squares, which matches the
//!   mean-reverting structure of the EU ETS band.
//!
//! [`PredictivePrimalDual`] wires a forecaster into the primal step;
//! the dual step is untouched (it uses realized quantities only), so
//! Theorem 2's fit guarantee is unaffected.

use cne_util::units::Allowances;

use crate::policy::{TradeContext, TradeObservation, TradingPolicy};
use crate::primal_dual::PrimalDualConfig;

/// A one-step-ahead forecaster of a scalar series.
pub trait Forecaster {
    /// Incorporates the value observed at the current step.
    fn observe(&mut self, value: f64);

    /// Predicts the next step's value; `None` until the forecaster has
    /// seen enough history.
    fn predict(&self) -> Option<f64>;

    /// Short display name.
    fn name(&self) -> &'static str;
}

/// Exponentially weighted moving average: `ŷ ← α y + (1 − α) ŷ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EwmaForecaster {
    alpha: f64,
    state: Option<f64>,
}

impl EwmaForecaster {
    /// Creates the forecaster with smoothing factor `alpha ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must lie in (0, 1]");
        Self { alpha, state: None }
    }
}

impl Forecaster for EwmaForecaster {
    fn observe(&mut self, value: f64) {
        self.state = Some(match self.state {
            None => value,
            Some(s) => self.alpha * value + (1.0 - self.alpha) * s,
        });
    }

    fn predict(&self) -> Option<f64> {
        self.state
    }

    fn name(&self) -> &'static str {
        "ewma"
    }
}

/// Online AR(1): `y_t ≈ μ + ϕ (y_{t−1} − μ)`, with `μ` the running mean
/// and `ϕ` estimated by exponentially discounted least squares on the
/// centred lag-1 pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ar1Forecaster {
    /// Forgetting factor for the regression statistics.
    discount: f64,
    mean: f64,
    count: u64,
    /// Discounted Σ x·y and Σ x² of centred consecutive pairs.
    sxy: f64,
    sxx: f64,
    last: Option<f64>,
}

impl Ar1Forecaster {
    /// Creates the forecaster; `discount ∈ (0, 1]` is the forgetting
    /// factor (1.0 = ordinary least squares over all history).
    ///
    /// # Panics
    /// Panics if `discount` is outside `(0, 1]`.
    #[must_use]
    pub fn new(discount: f64) -> Self {
        assert!(
            discount > 0.0 && discount <= 1.0,
            "discount must lie in (0, 1]"
        );
        Self {
            discount,
            mean: 0.0,
            count: 0,
            sxy: 0.0,
            sxx: 0.0,
            last: None,
        }
    }

    /// The current autoregression coefficient estimate `ϕ` (0 until at
    /// least two observations arrive).
    #[must_use]
    pub fn phi(&self) -> f64 {
        if self.sxx > 1e-12 {
            (self.sxy / self.sxx).clamp(-1.0, 1.0)
        } else {
            0.0
        }
    }
}

impl Forecaster for Ar1Forecaster {
    fn observe(&mut self, value: f64) {
        self.count += 1;
        self.mean += (value - self.mean) / self.count as f64;
        if let Some(prev) = self.last {
            let x = prev - self.mean;
            let y = value - self.mean;
            self.sxy = self.discount * self.sxy + x * y;
            self.sxx = self.discount * self.sxx + x * x;
        }
        self.last = Some(value);
    }

    fn predict(&self) -> Option<f64> {
        self.last
            .map(|prev| self.mean + self.phi() * (prev - self.mean))
    }

    fn name(&self) -> &'static str {
        "ar1"
    }
}

/// Algorithm 2 with a forecasted price in the primal step.
///
/// The primal update replaces `∇f^{t−1} = (c^{t−1}, −r^{t−1})` with the
/// forecast `(ĉ^t, −r̂^t)`; until the forecasters have history it falls
/// back to the last observed prices, i.e. behaves exactly like
/// [`crate::PrimalDual`].
#[derive(Debug, Clone)]
pub struct PredictivePrimalDual<F> {
    config: PrimalDualConfig,
    buy_forecaster: F,
    sell_forecaster: F,
    z_prev: f64,
    w_prev: f64,
    lambda: f64,
}

impl<F: Forecaster> PredictivePrimalDual<F> {
    /// Creates the policy with a forecaster per price leg.
    #[must_use]
    pub fn new(config: PrimalDualConfig, buy_forecaster: F, sell_forecaster: F) -> Self {
        Self {
            config,
            buy_forecaster,
            sell_forecaster,
            z_prev: 0.0,
            w_prev: 0.0,
            lambda: 0.0,
        }
    }

    /// The current dual variable.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl<F: Forecaster> TradingPolicy for PredictivePrimalDual<F> {
    fn decide(&mut self, _t: usize, ctx: &TradeContext) -> (Allowances, Allowances) {
        let (z, w) = match (
            self.buy_forecaster.predict(),
            self.sell_forecaster.predict(),
        ) {
            (Some(c_hat), Some(r_hat)) => {
                let z = (self.z_prev - self.config.gamma2 * (c_hat - self.lambda))
                    .clamp(0.0, ctx.bounds.max_buy.get());
                let w = (self.w_prev - self.config.gamma2 * (self.lambda - r_hat))
                    .clamp(0.0, ctx.bounds.max_sell.get());
                (z, w)
            }
            _ => (self.z_prev, self.w_prev),
        };
        self.z_prev = z;
        self.w_prev = w;
        (Allowances::new(z), Allowances::new(w))
    }

    fn observe(&mut self, _t: usize, obs: &TradeObservation) {
        self.lambda = (self.lambda + self.config.gamma1 * obs.constraint_value()).max(0.0);
        self.buy_forecaster.observe(obs.buy_price.get());
        self.sell_forecaster.observe(obs.sell_price.get());
    }

    fn name(&self) -> &'static str {
        "predictive-pd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cne_market::TradeBounds;
    use cne_util::units::PricePerAllowance;

    #[test]
    fn ewma_converges_to_constant() {
        let mut f = EwmaForecaster::new(0.3);
        assert_eq!(f.predict(), None);
        for _ in 0..100 {
            f.observe(7.0);
        }
        assert!((f.predict().expect("warm") - 7.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_tracks_level_shift() {
        let mut f = EwmaForecaster::new(0.5);
        for _ in 0..20 {
            f.observe(5.0);
        }
        for _ in 0..20 {
            f.observe(10.0);
        }
        assert!((f.predict().expect("warm") - 10.0).abs() < 0.01);
    }

    #[test]
    fn ar1_recovers_coefficient() {
        // Simulate y_t = μ + 0.8 (y_{t−1} − μ) + ε with persistent
        // excitation from the noise term.
        let mut rng = cne_util::SeedSequence::new(5).rng();
        use rand::Rng;
        let mut f = Ar1Forecaster::new(1.0);
        let mu = 8.0;
        let mut y = 10.0;
        for _ in 0..5000 {
            f.observe(y);
            y = mu + 0.8 * (y - mu) + rng.gen_range(-0.3..0.3);
        }
        assert!((f.phi() - 0.8).abs() < 0.1, "phi estimate off: {}", f.phi());
    }

    #[test]
    fn ar1_prediction_moves_toward_mean() {
        let mut f = Ar1Forecaster::new(1.0);
        // Alternating decaying series around 8.
        let series = [10.0, 8.4, 9.0, 8.2, 8.6, 8.1, 8.4, 8.05, 8.2, 8.02];
        for &v in &series {
            f.observe(v);
        }
        let pred = f.predict().expect("warm");
        assert!(pred.is_finite());
        // Prediction lies between the last value and the running mean
        // when ϕ ∈ [0, 1].
        if f.phi() >= 0.0 {
            let last: f64 = 8.02;
            let lo = last.min(f.mean) - 1e-9;
            let hi = last.max(f.mean) + 1e-9;
            assert!(
                (lo..=hi).contains(&pred),
                "pred {pred} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn predictive_pd_respects_bounds_and_duals() {
        let cfg = PrimalDualConfig::new(0.5, 0.5);
        let mut alg =
            PredictivePrimalDual::new(cfg, EwmaForecaster::new(0.4), EwmaForecaster::new(0.4));
        let bounds = TradeBounds::new(Allowances::new(10.0), Allowances::new(5.0));
        for t in 0..50 {
            let price = 8.0 + (t as f64 * 0.7).sin();
            let ctx = TradeContext {
                buy_price: PricePerAllowance::new(price),
                sell_price: PricePerAllowance::new(0.9 * price),
                cap_share: 3.0,
                bounds,
            };
            let (z, w) = alg.decide(t, &ctx);
            assert!((0.0..=10.0).contains(&z.get()));
            assert!((0.0..=5.0).contains(&w.get()));
            alg.observe(
                t,
                &TradeObservation {
                    emissions: 5.0,
                    bought: z,
                    sold: w,
                    buy_price: ctx.buy_price,
                    sell_price: ctx.sell_price,
                    cap_share: 3.0,
                },
            );
            assert!(alg.lambda() >= 0.0);
        }
        // Under a persistent deficit the policy ends up buying.
        let ctx = TradeContext {
            buy_price: PricePerAllowance::new(8.0),
            sell_price: PricePerAllowance::new(7.2),
            cap_share: 3.0,
            bounds,
        };
        let (z, _) = alg.decide(50, &ctx);
        assert!(z.get() > 0.0, "deficit should force purchases");
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_validates_alpha() {
        let _ = EwmaForecaster::new(0.0);
    }
}
