//! A small dense two-phase simplex solver.
//!
//! The paper solves the offline trading benchmark with Gurobi; this
//! module is the stand-in. It is a textbook primal simplex on the full
//! tableau with Bland's anti-cycling rule — entirely adequate for the
//! few-hundred-variable LPs the offline benchmark produces, and exact
//! up to floating-point tolerance.
//!
//! # Examples
//!
//! ```
//! use cne_trading::lp::{ConstraintOp, LinearProgram};
//!
//! // min -x - 2y  s.t.  x + y ≤ 4, x ≤ 3, y ≤ 2, x,y ≥ 0 → (2, 2).
//! let mut lp = LinearProgram::new(vec![-1.0, -2.0]);
//! lp.add_constraint(vec![1.0, 1.0], ConstraintOp::Le, 4.0);
//! lp.add_constraint(vec![1.0, 0.0], ConstraintOp::Le, 3.0);
//! lp.add_constraint(vec![0.0, 1.0], ConstraintOp::Le, 2.0);
//! let sol = lp.solve().unwrap();
//! assert!((sol.objective - (-6.0)).abs() < 1e-9);
//! ```

use std::fmt;

/// Relation of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

/// Errors from [`LinearProgram::solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpError {
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below on the feasible set.
    Unbounded,
    /// The iteration limit was exceeded (numerical trouble).
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => f.write_str("linear program is infeasible"),
            LpError::Unbounded => f.write_str("linear program is unbounded"),
            LpError::IterationLimit => f.write_str("simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal values of the structural variables.
    pub x: Vec<f64>,
    /// Optimal objective value.
    pub objective: f64,
}

/// A linear program `min c·x` s.t. linear constraints and `x ≥ 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearProgram {
    objective: Vec<f64>,
    rows: Vec<(Vec<f64>, ConstraintOp, f64)>,
}

impl LinearProgram {
    /// Starts a program with the given minimization objective.
    ///
    /// # Panics
    /// Panics if the objective is empty or non-finite.
    #[must_use]
    pub fn new(objective: Vec<f64>) -> Self {
        assert!(!objective.is_empty(), "objective must not be empty");
        assert!(
            objective.iter().all(|c| c.is_finite()),
            "objective must be finite"
        );
        Self {
            objective,
            rows: Vec::new(),
        }
    }

    /// Number of structural variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Adds a constraint `coeffs · x (op) rhs`.
    ///
    /// # Panics
    /// Panics if `coeffs.len() != num_vars()` or any value is non-finite.
    pub fn add_constraint(&mut self, coeffs: Vec<f64>, op: ConstraintOp, rhs: f64) {
        assert_eq!(coeffs.len(), self.num_vars(), "coefficient length mismatch");
        assert!(
            coeffs.iter().all(|c| c.is_finite()) && rhs.is_finite(),
            "constraint must be finite"
        );
        self.rows.push((coeffs, op, rhs));
    }

    /// Solves the program with the two-phase primal simplex.
    ///
    /// # Errors
    /// Returns [`LpError::Infeasible`], [`LpError::Unbounded`], or
    /// [`LpError::IterationLimit`].
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        Tableau::build(self).solve()
    }
}

const EPS: f64 = 1e-9;

/// Dense simplex tableau in standard form `Ax = b, x ≥ 0, b ≥ 0`.
struct Tableau {
    /// `m × (n + 1)` matrix; last column is the RHS.
    a: Vec<Vec<f64>>,
    /// Original objective padded to `n` entries.
    cost: Vec<f64>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Number of structural variables in the original program.
    structural: usize,
    /// First artificial-variable column (artificials occupy
    /// `artificial_start..n`).
    artificial_start: usize,
    n: usize,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Self {
        let m = lp.rows.len();
        let structural = lp.num_vars();
        // Count slack/surplus columns.
        let slacks = lp
            .rows
            .iter()
            .filter(|(_, op, _)| *op != ConstraintOp::Eq)
            .count();
        let n = structural + slacks + m; // worst case: artificial per row
        let artificial_start = structural + slacks;

        let mut a = vec![vec![0.0; n + 1]; m];
        let mut basis = vec![0usize; m];
        let mut slack_col = structural;
        for (i, (coeffs, op, rhs)) in lp.rows.iter().enumerate() {
            let flip = *rhs < 0.0;
            let sgn = if flip { -1.0 } else { 1.0 };
            for (j, &c) in coeffs.iter().enumerate() {
                a[i][j] = sgn * c;
            }
            a[i][n] = sgn * rhs;
            let eff_op = match (op, flip) {
                (ConstraintOp::Le, false) | (ConstraintOp::Ge, true) => ConstraintOp::Le,
                (ConstraintOp::Ge, false) | (ConstraintOp::Le, true) => ConstraintOp::Ge,
                (ConstraintOp::Eq, _) => ConstraintOp::Eq,
            };
            match eff_op {
                ConstraintOp::Le => {
                    a[i][slack_col] = 1.0;
                    basis[i] = slack_col;
                    slack_col += 1;
                }
                ConstraintOp::Ge => {
                    a[i][slack_col] = -1.0;
                    slack_col += 1;
                    let art = artificial_start + i;
                    a[i][art] = 1.0;
                    basis[i] = art;
                }
                ConstraintOp::Eq => {
                    let art = artificial_start + i;
                    a[i][art] = 1.0;
                    basis[i] = art;
                }
            }
        }
        let mut cost = vec![0.0; n];
        cost[..structural].copy_from_slice(&lp.objective);
        Tableau {
            a,
            cost,
            basis,
            structural,
            artificial_start,
            n,
        }
    }

    fn solve(mut self) -> Result<LpSolution, LpError> {
        let m = self.a.len();
        // Phase 1: minimize the sum of artificials, if any are basic.
        let has_artificial = self.basis.iter().any(|&b| b >= self.artificial_start);
        if has_artificial {
            let phase1_cost: Vec<f64> = (0..self.n)
                .map(|j| if j >= self.artificial_start { 1.0 } else { 0.0 })
                .collect();
            let obj = self.run_simplex(&phase1_cost, true)?;
            if obj > 1e-7 {
                return Err(LpError::Infeasible);
            }
            // Pivot any residual artificial out of the basis.
            for i in 0..m {
                if self.basis[i] >= self.artificial_start {
                    if let Some(j) = (0..self.artificial_start).find(|&j| self.a[i][j].abs() > EPS)
                    {
                        self.pivot(i, j);
                    }
                    // Otherwise the row is all-zero (redundant) — leave it.
                }
            }
        }
        // Phase 2 on the true objective, artificials barred.
        let cost = self.cost.clone();
        let objective = self.run_simplex(&cost, false)?;
        let mut x = vec![0.0; self.structural];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.structural {
                x[b] = self.a[i][self.n];
            }
        }
        Ok(LpSolution { x, objective })
    }

    /// Runs the simplex on the given cost vector; returns the optimal
    /// objective. `allow_artificials` permits artificial columns to
    /// enter (phase 1 only — they never improve, but keeps indexing
    /// simple).
    fn run_simplex(&mut self, cost: &[f64], allow_artificials: bool) -> Result<f64, LpError> {
        let m = self.a.len();
        let n = self.n;
        let max_iters = 50 * (m + n).max(100);
        for _ in 0..max_iters {
            // Reduced costs: r_j = c_j − c_B · B⁻¹ A_j (computed from the
            // current tableau as c_j − Σ_i c_{basis[i]} a[i][j]).
            let mut entering = None;
            for j in 0..n {
                if !allow_artificials && j >= self.artificial_start {
                    continue;
                }
                if self.basis.contains(&j) {
                    continue;
                }
                let mut r = cost[j];
                for i in 0..m {
                    r -= cost[self.basis[i]] * self.a[i][j];
                }
                if r < -EPS {
                    entering = Some(j); // Bland: first improving column
                    break;
                }
            }
            let Some(j) = entering else {
                // Optimal: compute objective.
                let mut obj = 0.0;
                for i in 0..m {
                    obj += cost[self.basis[i]] * self.a[i][n];
                }
                return Ok(obj);
            };
            // Ratio test (Bland: smallest basis index on ties).
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..m {
                if self.a[i][j] > EPS {
                    let ratio = self.a[i][n] / self.a[i][j];
                    if ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]))
                    {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(i) = leave else {
                return Err(LpError::Unbounded);
            };
            self.pivot(i, j);
        }
        Err(LpError::IterationLimit)
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let m = self.a.len();
        let piv = self.a[row][col];
        debug_assert!(piv.abs() > EPS, "pivot on a zero element");
        for v in &mut self.a[row] {
            *v /= piv;
        }
        for i in 0..m {
            if i == row {
                continue;
            }
            let factor = self.a[i][col];
            if factor.abs() <= EPS {
                continue;
            }
            for j in 0..=self.n {
                let delta = factor * self.a[row][j];
                self.a[i][j] -= delta;
            }
        }
        self.basis[row] = col;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_maximization_via_negation() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), 36.
        let mut lp = LinearProgram::new(vec![-3.0, -5.0]);
        lp.add_constraint(vec![1.0, 0.0], ConstraintOp::Le, 4.0);
        lp.add_constraint(vec![0.0, 2.0], ConstraintOp::Le, 12.0);
        lp.add_constraint(vec![3.0, 2.0], ConstraintOp::Le, 18.0);
        let sol = lp.solve().expect("solvable");
        assert!((sol.objective + 36.0).abs() < 1e-8);
        assert!((sol.x[0] - 2.0).abs() < 1e-8);
        assert!((sol.x[1] - 6.0).abs() < 1e-8);
    }

    #[test]
    fn ge_constraints_need_phase1() {
        // min x + y s.t. x + y ≥ 3, x ≥ 1 → objective 3.
        let mut lp = LinearProgram::new(vec![1.0, 1.0]);
        lp.add_constraint(vec![1.0, 1.0], ConstraintOp::Ge, 3.0);
        lp.add_constraint(vec![1.0, 0.0], ConstraintOp::Ge, 1.0);
        let sol = lp.solve().expect("solvable");
        assert!((sol.objective - 3.0).abs() < 1e-8);
    }

    #[test]
    fn equality_constraints() {
        // min 2x + 3y s.t. x + y = 10, x − y = 2 → x=6, y=4, obj 24.
        let mut lp = LinearProgram::new(vec![2.0, 3.0]);
        lp.add_constraint(vec![1.0, 1.0], ConstraintOp::Eq, 10.0);
        lp.add_constraint(vec![1.0, -1.0], ConstraintOp::Eq, 2.0);
        let sol = lp.solve().expect("solvable");
        assert!((sol.x[0] - 6.0).abs() < 1e-8);
        assert!((sol.x[1] - 4.0).abs() < 1e-8);
        assert!((sol.objective - 24.0).abs() < 1e-8);
    }

    #[test]
    fn detects_infeasibility() {
        let mut lp = LinearProgram::new(vec![1.0]);
        lp.add_constraint(vec![1.0], ConstraintOp::Le, 1.0);
        lp.add_constraint(vec![1.0], ConstraintOp::Ge, 2.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        let mut lp = LinearProgram::new(vec![-1.0, 0.0]);
        lp.add_constraint(vec![0.0, 1.0], ConstraintOp::Le, 1.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // min x s.t. −x ≤ −2  (i.e. x ≥ 2) → 2.
        let mut lp = LinearProgram::new(vec![1.0]);
        lp.add_constraint(vec![-1.0], ConstraintOp::Le, -2.0);
        let sol = lp.solve().expect("solvable");
        assert!((sol.objective - 2.0).abs() < 1e-8);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // A classic degenerate instance; Bland's rule must terminate.
        let mut lp = LinearProgram::new(vec![-0.75, 150.0, -0.02, 6.0]);
        lp.add_constraint(vec![0.25, -60.0, -0.04, 9.0], ConstraintOp::Le, 0.0);
        lp.add_constraint(vec![0.5, -90.0, -0.02, 3.0], ConstraintOp::Le, 0.0);
        lp.add_constraint(vec![0.0, 0.0, 1.0, 0.0], ConstraintOp::Le, 1.0);
        let sol = lp.solve().expect("solvable");
        assert!((sol.objective + 0.05).abs() < 1e-6, "obj {}", sol.objective);
    }

    #[test]
    fn trading_shaped_lp() {
        // min 8 z1 + 6 z2 − 7.2 w1 − 5.4 w2
        // s.t. z1 + z2 − w1 − w2 ≥ 3; z ≤ 4; w ≤ 4.
        // Greedy view: start from w = (4, 4) (net −8, needs +11), then
        // take net-raising actions by marginal cost: unsell w2 at 5.4
        // (4), buy z2 at 6 (4), unsell w1 at 7.2 (3 of 4). Optimal plan
        // z = (0, 4), w = (1, 0), objective 24 − 7.2 = 16.8.
        let mut lp = LinearProgram::new(vec![8.0, 6.0, -7.2, -5.4]);
        lp.add_constraint(vec![1.0, 1.0, -1.0, -1.0], ConstraintOp::Ge, 3.0);
        for j in 0..4 {
            let mut row = vec![0.0; 4];
            row[j] = 1.0;
            lp.add_constraint(row, ConstraintOp::Le, 4.0);
        }
        let sol = lp.solve().expect("solvable");
        assert!((sol.objective - 16.8).abs() < 1e-8, "obj {}", sol.objective);
    }
}
