//! Carbon-allowance trading policies: the paper's online primal–dual
//! Algorithm 2, the baselines it is compared against, and the exact
//! offline optimum.
//!
//! The subproblem `P2` decides, per slot, how many allowances to buy
//! (`z^t`) and sell (`w^t`) to minimize `Σ_t (z^t c^t − w^t r^t)`
//! subject to the long-term neutrality constraint
//! `Σ_t g^t ≤ 0` with `g^t = e^t − R/T − z^t + w^t` (`e^t` = slot
//! emissions in allowance units).
//!
//! Modules:
//!
//! * [`policy`] — the [`TradingPolicy`] trait and its decision context;
//! * [`primal_dual`] — Algorithm 2: rectified online primal–dual steps
//!   with closed-form box projections;
//! * [`lyapunov`] — drift-plus-penalty virtual-queue baseline (refs
//!   \[22\]–\[24\]);
//! * [`threshold`] — static price-threshold baseline;
//! * [`random`] — random trading baseline;
//! * [`offline`] — exact offline optimum via a parametric greedy
//!   (cross-checked against the dense simplex in [`lp`]);
//! * [`forecast`] — the paper's future-work extension: one-step price
//!   forecasters (EWMA, online AR(1)) and a predictive variant of
//!   Algorithm 2;
//! * [`lp`] — a small two-phase dense simplex solver (the "Gurobi"
//!   stand-in for the offline benchmark).
//!
//! # Examples
//!
//! ```
//! use cne_trading::{PrimalDual, PrimalDualConfig, TradingPolicy};
//! use cne_trading::policy::{TradeContext, TradeObservation};
//! use cne_market::TradeBounds;
//! use cne_util::units::{Allowances, PricePerAllowance};
//!
//! let bounds = TradeBounds::new(Allowances::new(10.0), Allowances::new(10.0));
//! let mut alg = PrimalDual::new(PrimalDualConfig::theorem2(160, 8.0, 5.0));
//! let ctx = TradeContext {
//!     buy_price: PricePerAllowance::new(8.0),
//!     sell_price: PricePerAllowance::new(7.2),
//!     cap_share: 3.0,
//!     bounds,
//! };
//! let (z, w) = alg.decide(0, &ctx);
//! assert!(z.get() >= 0.0 && w.get() >= 0.0);
//! alg.observe(0, &TradeObservation { emissions: 4.0, bought: z, sold: w,
//!     buy_price: ctx.buy_price, sell_price: ctx.sell_price, cap_share: 3.0 });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod forecast;
pub mod lp;
pub mod lyapunov;
pub mod offline;
pub mod policy;
pub mod primal_dual;
pub mod random;
pub mod threshold;

pub use forecast::{Ar1Forecaster, EwmaForecaster, Forecaster, PredictivePrimalDual};
pub use lyapunov::{Lyapunov, LyapunovConfig};
pub use offline::{offline_optimal_trades, OfflinePlan};
pub use policy::{TradeContext, TradeObservation, TradingPolicy};
pub use primal_dual::{PrimalDual, PrimalDualConfig};
pub use random::RandomTrader;
pub use threshold::{Threshold, ThresholdConfig};
