//! Random trading baseline.
//!
//! "The quantity of carbon allowances bought and sold at each time
//! slot is random" (paper §V-A). Quantities are drawn uniformly from
//! `[0, scale · cap_share]`, i.e. on the natural per-slot volume scale
//! but with no regard for prices, workload, or the constraint.

use cne_util::units::Allowances;
use cne_util::SeedSequence;
use rand::rngs::StdRng;
use rand::Rng;

use crate::policy::{TradeContext, TradeObservation, TradingPolicy};

/// The random trader.
#[derive(Debug, Clone)]
pub struct RandomTrader {
    rng: StdRng,
    buy_scale: f64,
    sell_scale: f64,
}

impl RandomTrader {
    /// Creates the trader; per-slot buys are uniform in
    /// `[0, buy_scale · cap_share]` and sells in
    /// `[0, sell_scale · cap_share]`.
    ///
    /// # Panics
    /// Panics if a scale is negative or not finite.
    #[must_use]
    pub fn new(buy_scale: f64, sell_scale: f64, seed: SeedSequence) -> Self {
        assert!(
            buy_scale >= 0.0 && buy_scale.is_finite(),
            "buy scale must be non-negative"
        );
        assert!(
            sell_scale >= 0.0 && sell_scale.is_finite(),
            "sell scale must be non-negative"
        );
        Self {
            rng: seed.derive("random-trader").rng(),
            buy_scale,
            sell_scale,
        }
    }

    /// The paper-style default: buys uniform in `[0, cap_share]`
    /// (mean half the cap share — uninformed about the actual
    /// emission level), with a quarter of that sell volume.
    #[must_use]
    pub fn paper_default(seed: SeedSequence) -> Self {
        Self::new(1.0, 0.25, seed)
    }
}

impl TradingPolicy for RandomTrader {
    fn decide(&mut self, _t: usize, ctx: &TradeContext) -> (Allowances, Allowances) {
        let z = self.rng.gen::<f64>() * self.buy_scale * ctx.cap_share;
        let w = self.rng.gen::<f64>() * self.sell_scale * ctx.cap_share;
        (Allowances::new(z), Allowances::new(w))
    }

    fn observe(&mut self, _t: usize, _obs: &TradeObservation) {}

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cne_market::TradeBounds;
    use cne_util::units::PricePerAllowance;

    fn ctx() -> TradeContext {
        TradeContext {
            buy_price: PricePerAllowance::new(8.0),
            sell_price: PricePerAllowance::new(7.2),
            cap_share: 3.0,
            bounds: TradeBounds::new(Allowances::new(50.0), Allowances::new(50.0)),
        }
    }

    #[test]
    fn quantities_within_scales() {
        let mut alg = RandomTrader::new(2.0, 0.5, SeedSequence::new(1));
        for t in 0..500 {
            let (z, w) = alg.decide(t, &ctx());
            assert!((0.0..=6.0).contains(&z.get()));
            assert!((0.0..=1.5).contains(&w.get()));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = RandomTrader::new(1.0, 1.0, SeedSequence::new(2));
        let mut b = RandomTrader::new(1.0, 1.0, SeedSequence::new(2));
        for t in 0..10 {
            assert_eq!(a.decide(t, &ctx()), b.decide(t, &ctx()));
        }
    }

    #[test]
    fn mean_buy_near_half_range() {
        let mut alg = RandomTrader::new(2.0, 0.5, SeedSequence::new(3));
        let mut total = 0.0;
        let n = 4000;
        for t in 0..n {
            total += alg.decide(t, &ctx()).0.get();
        }
        let mean = total / n as f64;
        assert!((mean - 3.0).abs() < 0.2, "mean buy {mean}");
    }
}
