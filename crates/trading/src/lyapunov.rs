//! Lyapunov drift-plus-penalty baseline (paper refs \[22\]–\[24\]).
//!
//! Maintains a virtual queue `Q^t` of accumulated constraint violation
//! and greedily minimizes the per-slot drift-plus-penalty
//!
//! ```text
//! V · f^t(Z) + Q^t · g^t(Z)
//! ```
//!
//! over the trade box. With `f` and `g` linear in `(z, w)`, the
//! minimizer is bang-bang:
//!
//! * buy `Z_max` iff `V c^t < Q^t` (queue pressure exceeds the
//!   weighted price), else 0;
//! * sell `W_max` iff `V r^t > Q^t` (revenue beats queue pressure),
//!   else 0.
//!
//! The queue then absorbs the realized constraint:
//! `Q^{t+1} = [Q^t + g^t(Z̄^t)]⁺`.

use cne_util::units::Allowances;

use crate::policy::{TradeContext, TradeObservation, TradingPolicy};

/// Lyapunov baseline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LyapunovConfig {
    /// The penalty weight `V` trading off cost against queue drift.
    pub v: f64,
    /// Initial virtual-queue backlog.
    pub initial_queue: f64,
}

impl LyapunovConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    /// Panics if `v` is not positive or `initial_queue` is negative.
    #[must_use]
    pub fn new(v: f64, initial_queue: f64) -> Self {
        assert!(v > 0.0 && v.is_finite(), "V must be positive");
        assert!(
            initial_queue >= 0.0 && initial_queue.is_finite(),
            "initial queue must be non-negative"
        );
        Self { v, initial_queue }
    }
}

impl Default for LyapunovConfig {
    /// `V = 1` with a small priming backlog so the policy starts
    /// covering emissions immediately.
    fn default() -> Self {
        Self {
            v: 1.0,
            initial_queue: 0.0,
        }
    }
}

/// The drift-plus-penalty trader.
#[derive(Debug, Clone)]
pub struct Lyapunov {
    config: LyapunovConfig,
    queue: f64,
}

impl Lyapunov {
    /// Creates the trader.
    #[must_use]
    pub fn new(config: LyapunovConfig) -> Self {
        Self {
            config,
            queue: config.initial_queue,
        }
    }

    /// Current virtual-queue backlog `Q^t`.
    #[must_use]
    pub fn queue(&self) -> f64 {
        self.queue
    }
}

impl TradingPolicy for Lyapunov {
    fn decide(&mut self, _t: usize, ctx: &TradeContext) -> (Allowances, Allowances) {
        let v = self.config.v;
        let z = if v * ctx.buy_price.get() < self.queue {
            ctx.bounds.max_buy
        } else {
            Allowances::ZERO
        };
        let w = if v * ctx.sell_price.get() > self.queue {
            ctx.bounds.max_sell
        } else {
            Allowances::ZERO
        };
        (z, w)
    }

    fn observe(&mut self, _t: usize, obs: &TradeObservation) {
        self.queue = (self.queue + obs.constraint_value()).max(0.0);
    }

    fn name(&self) -> &'static str {
        "lyapunov"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cne_market::TradeBounds;
    use cne_util::units::PricePerAllowance;

    fn ctx(c: f64, r: f64) -> TradeContext {
        TradeContext {
            buy_price: PricePerAllowance::new(c),
            sell_price: PricePerAllowance::new(r),
            cap_share: 3.0,
            bounds: TradeBounds::new(Allowances::new(5.0), Allowances::new(5.0)),
        }
    }

    fn observe_slot(alg: &mut Lyapunov, t: usize, z: f64, w: f64, e: f64) {
        alg.observe(
            t,
            &TradeObservation {
                emissions: e,
                bought: Allowances::new(z),
                sold: Allowances::new(w),
                buy_price: PricePerAllowance::new(8.0),
                sell_price: PricePerAllowance::new(7.2),
                cap_share: 3.0,
            },
        );
    }

    #[test]
    fn empty_queue_sells() {
        let mut alg = Lyapunov::new(LyapunovConfig::default());
        let (z, w) = alg.decide(0, &ctx(8.0, 7.2));
        assert_eq!(z.get(), 0.0);
        assert_eq!(w.get(), 5.0, "with Q=0 selling is pure profit");
    }

    #[test]
    fn queue_pressure_triggers_buying() {
        let mut alg = Lyapunov::new(LyapunovConfig::new(1.0, 0.0));
        // Accumulate violation until Q > V·c = 8.
        for t in 0..3 {
            observe_slot(&mut alg, t, 0.0, 0.0, 6.5); // g = 3.5 each
        }
        assert!(alg.queue() > 8.0);
        let (z, w) = alg.decide(3, &ctx(8.0, 7.2));
        assert_eq!(z.get(), 5.0);
        assert_eq!(w.get(), 0.0);
    }

    #[test]
    fn queue_is_positive_part_recursion() {
        let mut alg = Lyapunov::new(LyapunovConfig::new(1.0, 1.0));
        observe_slot(&mut alg, 0, 5.0, 0.0, 3.0); // g = 3−3−5 = −5
        assert_eq!(alg.queue(), 0.0, "queue must not go negative");
    }

    #[test]
    fn long_run_covers_deficit_roughly() {
        let mut alg = Lyapunov::new(LyapunovConfig::new(1.0, 0.0));
        let mut net = 0.0;
        let horizon = 500;
        for t in 0..horizon {
            let (z, w) = alg.decide(t, &ctx(8.0, 7.2));
            net += z.get() - w.get();
            observe_slot(&mut alg, t, z.get(), w.get(), 5.0); // deficit 2/slot
        }
        let deficit = 2.0 * horizon as f64;
        assert!(
            net > 0.5 * deficit && net < 1.5 * deficit,
            "net {net} vs deficit {deficit}"
        );
    }

    #[test]
    #[should_panic(expected = "V must be positive")]
    fn zero_v_rejected() {
        let _ = LyapunovConfig::new(0.0, 0.0);
    }
}
