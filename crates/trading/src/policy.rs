//! The common interface of all trading policies.

use cne_market::TradeBounds;
use cne_util::json::Json;
use cne_util::telemetry::Recorder;
use cne_util::units::{Allowances, PricePerAllowance};

/// Everything a policy may look at when deciding slot `t`'s trades.
///
/// The posted prices of the *current* slot are included because the
/// paper's Threshold and Lyapunov baselines react to them; the paper's
/// own Algorithm 2 deliberately uses only quantities observed up to
/// `t − 1` (delivered through [`TradeObservation`]) and ignores the
/// current prices at decision time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeContext {
    /// Posted buy price `c^t`.
    pub buy_price: PricePerAllowance,
    /// Posted sell price `r^t`.
    pub sell_price: PricePerAllowance,
    /// The per-slot cap share `R/T` in allowances.
    pub cap_share: f64,
    /// The per-slot trade bounds (the feasible box).
    pub bounds: TradeBounds,
}

/// End-of-slot feedback delivered to a policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeObservation {
    /// Slot emissions `e^t` in allowance units.
    pub emissions: f64,
    /// Executed purchase `z^t` (after clamping).
    pub bought: Allowances,
    /// Executed sale `w^t` (after clamping).
    pub sold: Allowances,
    /// The slot's buy price `c^t`.
    pub buy_price: PricePerAllowance,
    /// The slot's sell price `r^t`.
    pub sell_price: PricePerAllowance,
    /// The per-slot cap share `R/T`.
    pub cap_share: f64,
}

impl TradeObservation {
    /// The constraint function value
    /// `g^t = e^t − R/T − z^t + w^t`.
    #[must_use]
    pub fn constraint_value(&self) -> f64 {
        self.emissions - self.cap_share - self.bought.get() + self.sold.get()
    }

    /// The objective value `f^t = z^t c^t − w^t r^t` in cents.
    #[must_use]
    pub fn objective_value(&self) -> f64 {
        self.bought.get() * self.buy_price.get() - self.sold.get() * self.sell_price.get()
    }
}

/// A sequential carbon-trading policy.
///
/// Slot protocol: [`decide`](Self::decide) is called first (the policy
/// proposes `(z^t, w^t)`), the market executes and the system serves
/// its streams, then [`observe`](Self::observe) reports the realized
/// emissions and executed trades.
pub trait TradingPolicy {
    /// Proposes `(z^t, w^t)` for slot `t` (subsequently clamped by the
    /// market to the bounds in `ctx`).
    fn decide(&mut self, t: usize, ctx: &TradeContext) -> (Allowances, Allowances);

    /// As [`decide`](Self::decide), with a wall-clock span profiler
    /// open on this policy's span. The default ignores the profiler;
    /// policies with distinct internal phases override it.
    fn decide_profiled(
        &mut self,
        t: usize,
        ctx: &TradeContext,
        profiler: &mut cne_util::span::Profiler,
    ) -> (Allowances, Allowances) {
        let _ = profiler;
        self.decide(t, ctx)
    }

    /// Reports the realized outcome of slot `t`.
    fn observe(&mut self, t: usize, obs: &TradeObservation);

    /// Short display name (used in figure legends).
    fn name(&self) -> &'static str;

    /// The current dual variable λ, for policies that maintain one.
    /// Streaming runs flush the λ-trajectory telemetry only at finish,
    /// so live monitors and dashboards read λ through this accessor
    /// instead. The default (policies without a dual) is `None`.
    fn lambda(&self) -> Option<f64> {
        None
    }

    /// Dumps end-of-run internal state (gauges under a `trader.`
    /// prefix) into a telemetry recorder. The default records nothing;
    /// stateful policies override it.
    fn record_telemetry(&self, rec: &mut Recorder) {
        let _ = rec;
    }

    /// Exports the policy's mutable state as JSON, for a checkpoint
    /// taken between slots. The default refuses — a serve daemon would
    /// rather fail the checkpoint than silently drop trading state on
    /// resume. Stateless policies return [`Json::Null`].
    ///
    /// # Errors
    /// Returns an error when the policy does not support
    /// checkpoint/restore.
    fn export_state(&self) -> Result<Json, String> {
        Err(format!(
            "trading policy '{}' does not support checkpoint/restore",
            self.name()
        ))
    }

    /// Restores state produced by [`export_state`](Self::export_state)
    /// onto a freshly built policy (same configuration).
    ///
    /// # Errors
    /// Returns an error when the policy does not support
    /// checkpoint/restore, or when `state` does not match its shape.
    fn import_state(&mut self, state: &Json) -> Result<(), String> {
        let _ = state;
        Err(format!(
            "trading policy '{}' does not support checkpoint/restore",
            self.name()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraint_and_objective_values() {
        let obs = TradeObservation {
            emissions: 5.0,
            bought: Allowances::new(2.0),
            sold: Allowances::new(1.0),
            buy_price: PricePerAllowance::new(8.0),
            sell_price: PricePerAllowance::new(7.2),
            cap_share: 3.0,
        };
        // g = 5 − 3 − 2 + 1 = 1
        assert!((obs.constraint_value() - 1.0).abs() < 1e-12);
        // f = 2·8 − 1·7.2 = 8.8
        assert!((obs.objective_value() - 8.8).abs() < 1e-12);
    }

    #[test]
    fn object_safe() {
        struct Noop;
        impl TradingPolicy for Noop {
            fn decide(&mut self, _t: usize, _ctx: &TradeContext) -> (Allowances, Allowances) {
                (Allowances::ZERO, Allowances::ZERO)
            }
            fn observe(&mut self, _t: usize, _obs: &TradeObservation) {}
            fn name(&self) -> &'static str {
                "noop"
            }
        }
        let boxed: Box<dyn TradingPolicy> = Box::new(Noop);
        assert_eq!(boxed.name(), "noop");
    }
}
