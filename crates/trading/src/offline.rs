//! The exact offline trading optimum (the "Offline" benchmark).
//!
//! Given the full price series and total emissions, the offline problem
//! is the LP
//!
//! ```text
//! min  Σ_t (c_t z_t − r_t w_t)
//! s.t. Σ_t (z_t − w_t) ≥ D        (D = total emissions − R, may be < 0)
//!      0 ≤ z_t ≤ Z_max,  0 ≤ w_t ≤ W_max
//! ```
//!
//! Its structure (one coupling constraint + box bounds) admits an exact
//! greedy: start from the revenue-maximal base plan "sell `W_max`
//! whenever `r_t > 0`", then raise the net position to `D` by consuming
//! the cheapest *net-increasing actions* first — buying a unit at slot
//! `t` (marginal cost `c_t`) or un-selling a unit at slot `t` (marginal
//! cost `r_t`, the forgone revenue). This is a fractional-knapsack
//! argument; [`offline_optimal_trades`] implements it and the tests
//! cross-check it against the dense simplex of [`crate::lp`].

use crate::lp::{ConstraintOp, LinearProgram};

/// The offline optimal plan.
#[derive(Debug, Clone, PartialEq)]
pub struct OfflinePlan {
    /// Optimal purchases `z_t` (allowances).
    pub buys: Vec<f64>,
    /// Optimal sales `w_t` (allowances).
    pub sells: Vec<f64>,
    /// Optimal trading cost `Σ (c_t z_t − r_t w_t)` (cents; negative
    /// means the provider profits).
    pub cost: f64,
}

impl OfflinePlan {
    /// Net allowances acquired `Σ (z_t − w_t)`.
    #[must_use]
    pub fn net(&self) -> f64 {
        self.buys.iter().sum::<f64>() - self.sells.iter().sum::<f64>()
    }
}

/// Errors from the offline solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfflineError {
    /// The deficit exceeds the total purchasable volume `T · Z_max`.
    Infeasible,
}

impl std::fmt::Display for OfflineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("deficit exceeds the total purchasable volume")
    }
}

impl std::error::Error for OfflineError {}

/// Solves the offline trading LP exactly by the parametric greedy.
///
/// * `buy_prices` / `sell_prices` — the full series `c_t`, `r_t`;
/// * `deficit` — `D = total emissions − R` in allowances (negative when
///   the cap exceeds emissions);
/// * `max_buy` / `max_sell` — per-slot bounds.
///
/// # Errors
/// Returns [`OfflineError::Infeasible`] when `D > T · max_buy`.
///
/// # Panics
/// Panics if the series lengths differ, are empty, or contain negative
/// or non-finite prices.
pub fn offline_optimal_trades(
    buy_prices: &[f64],
    sell_prices: &[f64],
    deficit: f64,
    max_buy: f64,
    max_sell: f64,
) -> Result<OfflinePlan, OfflineError> {
    assert_eq!(
        buy_prices.len(),
        sell_prices.len(),
        "price series length mismatch"
    );
    assert!(!buy_prices.is_empty(), "empty price series");
    assert!(
        buy_prices
            .iter()
            .chain(sell_prices)
            .all(|p| p.is_finite() && *p >= 0.0),
        "prices must be finite and non-negative"
    );
    assert!(
        max_buy >= 0.0 && max_sell >= 0.0 && deficit.is_finite(),
        "bounds must be non-negative"
    );
    let t_len = buy_prices.len();
    if deficit > t_len as f64 * max_buy + 1e-9 {
        return Err(OfflineError::Infeasible);
    }

    // Base plan: buy nothing, sell the maximum wherever revenue is
    // positive (selling at price 0 is a wash; skip it).
    let mut buys = vec![0.0; t_len];
    let mut sells: Vec<f64> = sell_prices
        .iter()
        .map(|&r| if r > 0.0 { max_sell } else { 0.0 })
        .collect();
    let base_net: f64 = -sells.iter().sum::<f64>();
    let mut needed = deficit - base_net;
    if needed <= 0.0 {
        let cost = plan_cost(buy_prices, sell_prices, &buys, &sells);
        return Ok(OfflinePlan { buys, sells, cost });
    }

    // Net-increasing actions sorted by marginal cost.
    #[derive(Clone, Copy)]
    enum Action {
        Buy(usize),
        Unsell(usize),
    }
    let mut actions: Vec<(f64, Action)> = Vec::with_capacity(2 * t_len);
    for t in 0..t_len {
        if max_buy > 0.0 {
            actions.push((buy_prices[t], Action::Buy(t)));
        }
        if sells[t] > 0.0 {
            actions.push((sell_prices[t], Action::Unsell(t)));
        }
    }
    actions.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite prices"));

    for (_, action) in actions {
        if needed <= 1e-12 {
            break;
        }
        match action {
            Action::Buy(t) => {
                let take = needed.min(max_buy - buys[t]);
                buys[t] += take;
                needed -= take;
            }
            Action::Unsell(t) => {
                let take = needed.min(sells[t]);
                sells[t] -= take;
                needed -= take;
            }
        }
    }
    debug_assert!(needed <= 1e-6, "greedy failed to reach the deficit");
    let cost = plan_cost(buy_prices, sell_prices, &buys, &sells);
    Ok(OfflinePlan { buys, sells, cost })
}

fn plan_cost(buy_prices: &[f64], sell_prices: &[f64], buys: &[f64], sells: &[f64]) -> f64 {
    let mut cost = 0.0;
    for t in 0..buys.len() {
        cost += buy_prices[t] * buys[t] - sell_prices[t] * sells[t];
    }
    cost
}

/// Solves the same LP with the dense simplex (reference implementation
/// used by tests and the `offline_lp` benchmark to validate the greedy).
///
/// # Errors
/// Returns [`OfflineError::Infeasible`] when the LP has no feasible
/// point.
///
/// # Panics
/// Panics on inconsistent inputs (see [`offline_optimal_trades`]) or if
/// the simplex fails numerically.
pub fn offline_optimal_trades_lp(
    buy_prices: &[f64],
    sell_prices: &[f64],
    deficit: f64,
    max_buy: f64,
    max_sell: f64,
) -> Result<OfflinePlan, OfflineError> {
    assert_eq!(buy_prices.len(), sell_prices.len(), "length mismatch");
    let t_len = buy_prices.len();
    // Variables: z_0..z_{T−1}, w_0..w_{T−1}.
    let mut objective = Vec::with_capacity(2 * t_len);
    objective.extend_from_slice(buy_prices);
    objective.extend(sell_prices.iter().map(|&r| -r));
    let mut lp = LinearProgram::new(objective);
    let mut coupling = vec![1.0; t_len];
    coupling.extend(std::iter::repeat(-1.0).take(t_len));
    lp.add_constraint(coupling, ConstraintOp::Ge, deficit);
    for j in 0..2 * t_len {
        let mut row = vec![0.0; 2 * t_len];
        row[j] = 1.0;
        let bound = if j < t_len { max_buy } else { max_sell };
        lp.add_constraint(row, ConstraintOp::Le, bound);
    }
    match lp.solve() {
        Ok(sol) => Ok(OfflinePlan {
            buys: sol.x[..t_len].to_vec(),
            sells: sol.x[t_len..].to_vec(),
            cost: sol.objective,
        }),
        Err(crate::lp::LpError::Infeasible) => Err(OfflineError::Infeasible),
        Err(e) => panic!("offline LP failed numerically: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cne_util::SeedSequence;
    use rand::Rng;

    #[test]
    fn no_deficit_sells_everything() {
        let c = [8.0, 9.0, 10.0];
        let r = [7.2, 8.1, 9.0];
        let plan = offline_optimal_trades(&c, &r, -100.0, 5.0, 2.0).expect("feasible");
        assert_eq!(plan.buys, vec![0.0; 3]);
        assert_eq!(plan.sells, vec![2.0; 3]);
        let expected = -(7.2 + 8.1 + 9.0) * 2.0;
        assert!((plan.cost - expected).abs() < 1e-9);
    }

    #[test]
    fn deficit_buys_cheapest_slots_first() {
        let c = [10.0, 6.0, 8.0];
        let r = [0.0, 0.0, 0.0]; // selling is worthless → pure buying
        let plan = offline_optimal_trades(&c, &r, 7.0, 5.0, 5.0).expect("feasible");
        // Buy 5 at price 6, then 2 at price 8.
        assert_eq!(plan.buys, vec![0.0, 5.0, 2.0]);
        assert!((plan.cost - (5.0 * 6.0 + 2.0 * 8.0)).abs() < 1e-9);
        assert!((plan.net() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn arbitrage_exploited_when_profitable() {
        // Sell at 9.0, buy back at 6.0 → profit even with zero deficit.
        let c = [6.0, 20.0];
        let r = [5.4, 9.0];
        let plan = offline_optimal_trades(&c, &r, 0.0, 3.0, 3.0).expect("feasible");
        // Base: sell 3+3; needed = 0 − (−6) = 6; cheapest actions:
        // unsell at 5.4 (3), buy at 6.0 (3), leaving sells at 9.0 alone.
        assert!((plan.net() - 0.0).abs() < 1e-9);
        assert!(plan.cost < 0.0, "arbitrage must profit: {}", plan.cost);
        assert!((plan.cost - (3.0 * 6.0 - 3.0 * 9.0)).abs() < 1e-9);
    }

    #[test]
    fn infeasible_deficit_detected() {
        let c = [8.0];
        let r = [7.2];
        assert_eq!(
            offline_optimal_trades(&c, &r, 100.0, 5.0, 5.0),
            Err(OfflineError::Infeasible)
        );
    }

    #[test]
    fn greedy_matches_simplex_on_random_instances() {
        let mut rng = SeedSequence::new(77).rng();
        for trial in 0..10 {
            let t_len = 12;
            let c: Vec<f64> = (0..t_len).map(|_| rng.gen_range(5.9..10.9)).collect();
            let r: Vec<f64> = c.iter().map(|&x| 0.9 * x).collect();
            let deficit = rng.gen_range(-20.0..30.0);
            let greedy = offline_optimal_trades(&c, &r, deficit, 4.0, 2.0).expect("feasible");
            let lp = offline_optimal_trades_lp(&c, &r, deficit, 4.0, 2.0).expect("feasible");
            assert!(
                (greedy.cost - lp.cost).abs() < 1e-6,
                "trial {trial}: greedy {} vs simplex {}",
                greedy.cost,
                lp.cost
            );
            // Both satisfy the constraint.
            assert!(greedy.net() >= deficit - 1e-9);
            assert!(lp.net() >= deficit - 1e-9);
        }
    }

    #[test]
    fn bounds_respected() {
        let mut rng = SeedSequence::new(78).rng();
        let t_len = 40;
        let c: Vec<f64> = (0..t_len).map(|_| rng.gen_range(5.9..10.9)).collect();
        let r: Vec<f64> = c.iter().map(|&x| 0.9 * x).collect();
        let plan = offline_optimal_trades(&c, &r, 55.0, 3.0, 1.5).expect("feasible");
        for t in 0..t_len {
            assert!((0.0..=3.0 + 1e-12).contains(&plan.buys[t]));
            assert!((0.0..=1.5 + 1e-12).contains(&plan.sells[t]));
        }
    }

    #[test]
    fn exact_boundary_deficit_feasible() {
        let c = [8.0, 9.0];
        let r = [7.2, 8.1];
        let plan = offline_optimal_trades(&c, &r, 4.0, 2.0, 1.0).expect("boundary feasible");
        assert!((plan.net() - 4.0).abs() < 1e-9);
        assert_eq!(plan.buys, vec![2.0, 2.0]);
        assert_eq!(plan.sells, vec![0.0, 0.0]);
    }
}
