//! `carbon-edge bench-check` — the CI benchmark-regression gate.
//!
//! Compares a freshly measured `BENCH_*.json` report against a
//! committed baseline:
//!
//! * entries with a `min` floor fail when the **current** value drops
//!   below it (machine-independent ratios such as the batched-serving
//!   speedup or the bit-identical-equivalence flag); the effective
//!   floor is the *stricter* of the baseline's and the current run's —
//!   some floors (the edge-parallel speedup) are armed by the
//!   measuring machine itself, so a multi-core CI run self-gates even
//!   against a baseline committed from a small machine, while a
//!   regenerated report still cannot relax a committed floor;
//! * entries with `gate: true` fail when the current value regresses
//!   past the baseline by more than `--tolerance` (default ±25%) in
//!   the entry's bad direction — improvements never fail;
//! * everything else is informational.
//!
//! On failure, every regressed entry is printed as a table before the
//! non-zero exit, so CI logs show *what* regressed and by how much.
//!
//! Speedup-ratio entries whose floor stayed disarmed on **both** sides
//! (neither the baseline machine nor the current one had enough cores
//! to arm it) are reported as loud warnings — a green check that
//! silently skipped its reason for existing is worse than a red one —
//! together with the detected core counts. When the
//! `GITHUB_STEP_SUMMARY` environment variable points at a writable
//! file (as it does inside GitHub Actions), the full comparison table
//! is additionally appended there as Markdown.

use cne_bench::perf::{BenchEntry, BenchReport};

use crate::args::Options;

/// One failed comparison, for the printed table.
struct Regression {
    name: String,
    baseline: String,
    current: f64,
    limit: f64,
    reason: &'static str,
}

/// Compares `current` against `baseline` and returns the regressions.
fn compare_reports(
    baseline: &BenchReport,
    current: &BenchReport,
    tolerance: f64,
) -> Result<Vec<Regression>, String> {
    if baseline.mode != current.mode {
        return Err(format!(
            "mode mismatch: baseline is '{}', current is '{}' — \
             regenerate the baseline at the same scale",
            baseline.mode, current.mode
        ));
    }
    let mut regressions = Vec::new();
    for base in &baseline.entries {
        let Some(cur) = current.entries.iter().find(|e| e.name == base.name) else {
            regressions.push(Regression {
                name: base.name.clone(),
                baseline: format!("{:.3}", base.value),
                current: f64::NAN,
                limit: f64::NAN,
                reason: "missing from current run",
            });
            continue;
        };
        check_entry(base, cur, tolerance, &mut regressions);
    }
    Ok(regressions)
}

fn check_entry(
    base: &BenchEntry,
    cur: &BenchEntry,
    tolerance: f64,
    regressions: &mut Vec<Regression>,
) {
    // Absolute floors apply to the current run's value. The effective
    // floor is the stricter of the two reports': the baseline's cannot
    // be relaxed by regenerating, and the current run may arm a floor
    // the baseline machine could not (e.g. the edge-parallel speedup
    // floor only exists on machines with enough cores).
    let floor = match (base.min, cur.min) {
        (Some(b), Some(c)) => Some(b.max(c)),
        (floor, None) | (None, floor) => floor,
    };
    if let Some(min) = floor {
        if cur.value < min {
            regressions.push(Regression {
                name: base.name.clone(),
                baseline: format!("floor {min:.3}"),
                current: cur.value,
                limit: min,
                reason: "below absolute floor",
            });
        }
        return;
    }
    if !base.gate {
        return;
    }
    // Relative gate: only the bad direction fails.
    let (limit, regressed) = if base.better == "higher" {
        let limit = base.value * (1.0 - tolerance);
        (limit, cur.value < limit)
    } else {
        let limit = base.value * (1.0 + tolerance);
        (limit, cur.value > limit)
    };
    if regressed {
        regressions.push(Regression {
            name: base.name.clone(),
            baseline: format!("{:.3}", base.value),
            current: cur.value,
            limit,
            reason: "outside relative tolerance",
        });
    }
}

/// The core count a report recorded (the `…/cores` entry the
/// edge-parallel suite emits), formatted for diagnostics.
fn report_cores(report: &BenchReport) -> String {
    report
        .entries
        .iter()
        .find(|e| e.name.ends_with("/cores"))
        .map_or_else(|| "unknown".to_owned(), |e| format!("{:.0}", e.value))
}

/// Speedup-ratio gates that stayed disarmed on both sides: the floor
/// only exists on machines with enough cores, so when neither the
/// baseline machine nor the current one armed it, the ratio sails
/// through unchecked. That must be loud — a disarmed gate looks
/// exactly like a passing one in the exit code.
fn disarmed_speedup_gates(baseline: &BenchReport, current: &BenchReport) -> Vec<String> {
    let mut warnings = Vec::new();
    for base in &baseline.entries {
        if !base.name.contains("speedup") {
            continue;
        }
        let Some(cur) = current.entries.iter().find(|e| e.name == base.name) else {
            continue; // already reported as a regression
        };
        if base.min.is_none() && cur.min.is_none() {
            warnings.push(format!(
                "speedup gate '{}' is DISARMED — no floor on either side \
                 (baseline machine: {} cores, current machine: {} cores); \
                 the measured ratio {:.3} was NOT checked",
                base.name,
                report_cores(baseline),
                report_cores(current),
                cur.value,
            ));
        }
    }
    warnings
}

/// Renders the full comparison as a Markdown section for
/// `$GITHUB_STEP_SUMMARY`.
fn markdown_summary(
    baseline_path: &str,
    current_path: &str,
    baseline: &BenchReport,
    current: &BenchReport,
    regressions: &[Regression],
    warnings: &[String],
    tolerance: f64,
) -> String {
    let mut md = String::new();
    md.push_str(&format!(
        "### bench-check: `{baseline_path}` vs `{current_path}`\n\n"
    ));
    let verdict = if regressions.is_empty() {
        "✅ OK".to_owned()
    } else {
        format!("❌ {} regressed entries", regressions.len())
    };
    md.push_str(&format!(
        "- mode: `{}`, tolerance ±{:.0}%\n- cores: baseline machine {}, current machine {}\n- verdict: {verdict}\n\n",
        baseline.mode,
        tolerance * 100.0,
        report_cores(baseline),
        report_cores(current),
    ));
    md.push_str("| entry | metric | baseline | current | Δ | status |\n");
    md.push_str("|---|---|---:|---:|---:|---|\n");
    for base in &baseline.entries {
        let cur = current.entries.iter().find(|e| e.name == base.name);
        let regressed = regressions.iter().find(|r| r.name == base.name);
        let (current_cell, delta_cell) = match cur {
            Some(cur) => {
                let delta = if base.value.abs() > f64::EPSILON {
                    format!("{:+.1}%", (cur.value - base.value) / base.value * 100.0)
                } else {
                    "—".to_owned()
                };
                (format!("{:.3}", cur.value), delta)
            }
            None => ("—".to_owned(), "—".to_owned()),
        };
        let status = if let Some(r) = regressed {
            format!("❌ {}", r.reason)
        } else {
            let floor = match (base.min, cur.and_then(|c| c.min)) {
                (Some(b), Some(c)) => Some(b.max(c)),
                (floor, None) | (None, floor) => floor,
            };
            if let Some(min) = floor {
                format!("✅ floor ≥ {min:.2}")
            } else if base.name.contains("speedup") {
                "⚠️ disarmed (core count)".to_owned()
            } else if base.gate {
                "✅ gated".to_owned()
            } else {
                "info".to_owned()
            }
        };
        md.push_str(&format!(
            "| `{}` | {} | {:.3} | {} | {} | {} |\n",
            base.name, base.metric, base.value, current_cell, delta_cell, status
        ));
    }
    if !warnings.is_empty() {
        md.push('\n');
        for w in warnings {
            md.push_str(&format!("> ⚠️ {w}\n"));
        }
    }
    md.push('\n');
    md
}

/// Appends to the `$GITHUB_STEP_SUMMARY` file when the variable is
/// set (inside GitHub Actions). A write failure only warns: the gate's
/// exit code must come from the comparison, not the reporting.
fn append_step_summary(markdown: &str) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    use std::io::Write;
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(markdown.as_bytes()));
    if let Err(e) = appended {
        eprintln!("warning: cannot append to GITHUB_STEP_SUMMARY ({path}): {e}");
    }
}

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "cannot read benchmark report {path}: {e}\n\
             hint: committed baselines live in results/; regenerate one \
             with 'cargo run --release --bin run_all -- --bench'"
        )
    })?;
    BenchReport::from_json_str(&text).map_err(|e| {
        format!(
            "benchmark report {path} is corrupt: {e}\n\
             hint: regenerate it with 'cargo run --release --bin run_all \
             -- --bench' (reports are BENCH_*.json files)"
        )
    })
}

/// `carbon-edge bench-check <baseline.json> <current.json>`.
///
/// # Errors
/// Returns an error (non-zero exit) on unreadable/malformed files,
/// mode mismatch, or any regressed entry.
pub fn bench_check(opts: &Options) -> Result<(), String> {
    let [baseline_path, current_path] = opts.inputs.as_slice() else {
        return Err(
            "bench-check needs exactly two files: <baseline.json> <current.json>".to_owned(),
        );
    };
    let baseline = load(baseline_path)?;
    let current = load(current_path)?;
    let regressions = compare_reports(&baseline, &current, opts.tolerance)?;
    let warnings = disarmed_speedup_gates(&baseline, &current);
    append_step_summary(&markdown_summary(
        baseline_path,
        current_path,
        &baseline,
        &current,
        &regressions,
        &warnings,
        opts.tolerance,
    ));
    for w in &warnings {
        eprintln!("bench-check  : WARNING — {w}");
    }

    let gated = baseline
        .entries
        .iter()
        .filter(|e| e.gate || e.min.is_some())
        .count();
    if regressions.is_empty() {
        println!(
            "bench-check  : OK — {gated} gated entries within ±{:.0}% of {baseline_path} \
             (baseline machine: {} cores, current machine: {} cores)",
            opts.tolerance * 100.0,
            report_cores(&baseline),
            report_cores(&current),
        );
        return Ok(());
    }

    println!(
        "bench-check  : {} regressed entries (tolerance ±{:.0}%; baseline \
         machine: {} cores, current machine: {} cores)\n",
        regressions.len(),
        opts.tolerance * 100.0,
        report_cores(&baseline),
        report_cores(&current),
    );
    println!(
        "{:<36} {:>14} {:>12} {:>12}  reason",
        "entry", "baseline", "current", "limit"
    );
    for r in &regressions {
        println!(
            "{:<36} {:>14} {:>12.3} {:>12.3}  {}",
            r.name, r.baseline, r.current, r.limit, r.reason
        );
    }
    Err(format!(
        "{} benchmark entries regressed vs {baseline_path}",
        regressions.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(
        name: &str,
        value: f64,
        better: &'static str,
        gate: bool,
        min: Option<f64>,
    ) -> BenchEntry {
        BenchEntry {
            name: name.to_owned(),
            metric: "us".to_owned(),
            value,
            better,
            gate,
            min,
        }
    }

    fn report(entries: Vec<BenchEntry>) -> BenchReport {
        BenchReport {
            mode: "quick".to_owned(),
            entries,
        }
    }

    #[test]
    fn within_tolerance_passes() {
        let base = report(vec![entry("a", 100.0, "lower", true, None)]);
        let cur = report(vec![entry("a", 120.0, "lower", true, None)]);
        assert!(compare_reports(&base, &cur, 0.25).unwrap().is_empty());
    }

    #[test]
    fn regression_past_tolerance_fails() {
        let base = report(vec![entry("a", 100.0, "lower", true, None)]);
        let cur = report(vec![entry("a", 126.0, "lower", true, None)]);
        let regressions = compare_reports(&base, &cur, 0.25).unwrap();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].name, "a");
    }

    #[test]
    fn improvements_never_fail() {
        let base = report(vec![
            entry("t", 100.0, "lower", true, None),
            entry("r", 2.0, "higher", true, None),
        ]);
        let cur = report(vec![
            entry("t", 10.0, "lower", true, None),
            entry("r", 9.0, "higher", true, None),
        ]);
        assert!(compare_reports(&base, &cur, 0.25).unwrap().is_empty());
    }

    #[test]
    fn floors_bind_the_current_run() {
        let base = report(vec![entry("speedup", 4.0, "higher", false, Some(1.5))]);
        let ok = report(vec![entry("speedup", 1.6, "higher", false, Some(1.5))]);
        assert!(compare_reports(&base, &ok, 0.25).unwrap().is_empty());
        let bad = report(vec![entry("speedup", 1.4, "higher", false, Some(1.5))]);
        assert_eq!(compare_reports(&base, &bad, 0.25).unwrap().len(), 1);
    }

    #[test]
    fn floor_armed_by_the_current_run_binds() {
        // The committed baseline came from a machine that could not arm
        // the floor (min: None); the CI machine arms it itself.
        let base = report(vec![entry("speedup", 1.0, "higher", false, None)]);
        let ok = report(vec![entry("speedup", 2.1, "higher", false, Some(1.8))]);
        assert!(compare_reports(&base, &ok, 0.25).unwrap().is_empty());
        let bad = report(vec![entry("speedup", 1.2, "higher", false, Some(1.8))]);
        let regressions = compare_reports(&base, &bad, 0.25).unwrap();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].reason, "below absolute floor");
        // The stricter of the two floors wins in both directions.
        let strict_base = report(vec![entry("speedup", 2.0, "higher", false, Some(1.9))]);
        let lax_cur = report(vec![entry("speedup", 1.85, "higher", false, Some(1.8))]);
        assert_eq!(
            compare_reports(&strict_base, &lax_cur, 0.25).unwrap().len(),
            1
        );
    }

    #[test]
    fn ungated_entries_are_informational() {
        let base = report(vec![entry("info", 1.0, "lower", false, None)]);
        let cur = report(vec![entry("info", 50.0, "lower", false, None)]);
        assert!(compare_reports(&base, &cur, 0.25).unwrap().is_empty());
    }

    #[test]
    fn disarmed_speedup_gates_warn_loudly() {
        let cores = |n: f64| entry("edge_parallel/cores", n, "higher", false, None);
        // Both sides floorless: disarmed, and the warning names both
        // machines' core counts.
        let base = report(vec![
            entry(
                "edge_parallel/speedup/edges=500",
                0.4,
                "higher",
                false,
                None,
            ),
            cores(1.0),
        ]);
        let cur = report(vec![
            entry(
                "edge_parallel/speedup/edges=500",
                0.9,
                "higher",
                false,
                None,
            ),
            cores(2.0),
        ]);
        let warnings = disarmed_speedup_gates(&base, &cur);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("DISARMED"));
        assert!(warnings[0].contains("baseline machine: 1 cores"));
        assert!(warnings[0].contains("current machine: 2 cores"));
        // A floor on either side arms the gate — no warning.
        let armed = report(vec![
            entry(
                "edge_parallel/speedup/edges=500",
                2.0,
                "higher",
                false,
                Some(1.8),
            ),
            cores(4.0),
        ]);
        assert!(disarmed_speedup_gates(&base, &armed).is_empty());
        assert!(disarmed_speedup_gates(&armed, &cur).is_empty());
        // Non-speedup entries never warn.
        let info = report(vec![entry("e2e/ours/edges=10", 9.0, "lower", true, None)]);
        assert!(disarmed_speedup_gates(&info, &info).is_empty());
    }

    #[test]
    fn markdown_summary_covers_every_entry() {
        let base = report(vec![
            entry(
                "edge_parallel/ours/edges=50/threads=1",
                8.0,
                "lower",
                true,
                None,
            ),
            entry("edge_parallel/speedup/edges=50", 0.4, "higher", false, None),
            entry("gone", 1.0, "lower", true, None),
        ]);
        let cur = report(vec![
            entry(
                "edge_parallel/ours/edges=50/threads=1",
                6.0,
                "lower",
                true,
                None,
            ),
            entry(
                "edge_parallel/speedup/edges=50",
                2.5,
                "higher",
                false,
                Some(1.0),
            ),
        ]);
        let regressions = compare_reports(&base, &cur, 0.25).unwrap();
        let warnings = disarmed_speedup_gates(&base, &cur);
        let md = markdown_summary(
            "results/b.json",
            "/tmp/c.json",
            &base,
            &cur,
            &regressions,
            &warnings,
            0.25,
        );
        assert!(md.contains("| `edge_parallel/ours/edges=50/threads=1` |"));
        assert!(md.contains("-25.0%"), "delta column renders: {md}");
        assert!(md.contains("floor ≥ 1.00"), "current-armed floor shows");
        assert!(md.contains("missing from current run"));
        assert!(md.contains("❌ 1 regressed entries"));
    }

    #[test]
    fn missing_entries_and_mode_mismatch_fail() {
        let base = report(vec![entry("a", 1.0, "lower", true, None)]);
        let cur = report(vec![]);
        assert_eq!(compare_reports(&base, &cur, 0.25).unwrap().len(), 1);
        let mut full = report(vec![]);
        full.mode = "full".to_owned();
        assert!(compare_reports(&full, &report(vec![]), 0.25).is_err());
    }
}
