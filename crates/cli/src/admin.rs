//! The serve daemon's admin endpoint: a minimal HTTP/1.0 server (no
//! third-party dependency) exposing `/metrics` (Prometheus text
//! exposition), `/healthz` (liveness), and `/readyz` (slot-clock
//! readiness) over `unix:PATH` or `tcp:HOST:PORT`.
//!
//! The endpoint is strictly read-only and lives entirely off the
//! deterministic serve path: the daemon renders a metrics page after
//! each slot and publishes it into [`AdminState`]; the listener thread
//! only ever reads that snapshot. Telemetry traces are byte-identical
//! with the admin endpoint on or off.

use std::io::{BufRead as _, BufReader, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long a connection may dawdle before the server gives up on it.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Snapshot shared between the serve loop (writer) and the admin
/// listener thread (reader).
pub struct AdminState {
    metrics: Mutex<String>,
    last_progress: Mutex<Instant>,
    done: AtomicBool,
    degraded: AtomicBool,
    ready_deadline: Duration,
}

impl AdminState {
    /// Creates the shared state. The slot clock starts now: a daemon
    /// that never serves its first slot within `ready_deadline` reads
    /// as not ready.
    #[must_use]
    pub fn new(ready_deadline: Duration) -> Arc<Self> {
        Arc::new(Self {
            metrics: Mutex::new(String::new()),
            last_progress: Mutex::new(Instant::now()),
            done: AtomicBool::new(false),
            degraded: AtomicBool::new(false),
            ready_deadline,
        })
    }

    /// Publishes a freshly rendered metrics page and restarts the
    /// slot clock — called by the serve loop after each slot.
    pub fn publish(&self, page: String) {
        *self.metrics.lock().expect("admin metrics lock") = page;
        self.touch();
    }

    /// Restarts the slot clock without changing the page.
    pub fn touch(&self) {
        *self.last_progress.lock().expect("admin progress lock") = Instant::now();
    }

    /// Marks the run complete: a finished daemon is permanently ready
    /// (it is draining, not stalled).
    pub fn mark_done(&self) {
        self.done.store(true, Ordering::SeqCst);
    }

    /// Flips the degraded-durability flag: `true` while the daemon is
    /// still serving but can no longer make its WAL/checkpoint
    /// guarantees (persistent storage failure), `false` once a
    /// successful checkpoint restores them. A degraded daemon reads
    /// 503 on `/readyz` so orchestrators stop routing traffic that
    /// would be lost in a crash.
    pub fn set_degraded(&self, degraded: bool) {
        self.degraded.store(degraded, Ordering::SeqCst);
    }

    /// Whether durability is currently degraded.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// The current metrics page.
    #[must_use]
    pub fn metrics_page(&self) -> String {
        self.metrics.lock().expect("admin metrics lock").clone()
    }

    /// Seconds since the slot clock was last restarted.
    fn stalled_for(&self) -> Duration {
        self.last_progress
            .lock()
            .expect("admin progress lock")
            .elapsed()
    }

    /// Readiness: the run is complete, or the slot clock moved within
    /// the deadline.
    #[must_use]
    pub fn is_ready(&self) -> bool {
        self.done.load(Ordering::SeqCst) || self.stalled_for() <= self.ready_deadline
    }
}

/// Routes one request to `(status line, content type, body)`.
fn route(method: &str, path: &str, state: &AdminState) -> (&'static str, &'static str, String) {
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_owned(),
        );
    }
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            state.metrics_page(),
        ),
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_owned()),
        "/readyz" => {
            if state.is_degraded() {
                (
                    "503 Service Unavailable",
                    "text/plain; charset=utf-8",
                    "degraded: durability lost (WAL or checkpoint writes failing); \
                     serving continues but a crash would lose acknowledged input\n"
                        .to_owned(),
                )
            } else if state.is_ready() {
                ("200 OK", "text/plain; charset=utf-8", "ready\n".to_owned())
            } else {
                (
                    "503 Service Unavailable",
                    "text/plain; charset=utf-8",
                    format!(
                        "stalled: no slot served for {:.1}s (deadline {:.1}s)\n",
                        state.stalled_for().as_secs_f64(),
                        state.ready_deadline.as_secs_f64()
                    ),
                )
            }
        }
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found (try /metrics, /healthz, /readyz)\n".to_owned(),
        ),
    }
}

/// Serves one connection: read the request line, drain the headers,
/// write a complete HTTP/1.0 response, close.
fn handle<S: Read + Write>(stream: S, state: &AdminState) {
    let mut reader = BufReader::new(stream);
    let mut request = String::new();
    if reader.read_line(&mut request).is_err() {
        return;
    }
    let mut parts = request.split_whitespace();
    let method = parts.next().unwrap_or("").to_owned();
    let path = parts.next().unwrap_or("").to_owned();
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {}
            Err(_) => return,
        }
    }
    let (status, content_type, body) = route(&method, &path, state);
    let mut stream = reader.into_inner();
    let _ = write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// Binds the admin listener on `unix:PATH` or `tcp:HOST:PORT` and
/// spawns its accept loop. Returns the canonical bound address (with
/// the real port when `:0` was requested), so callers can print it and
/// tests can connect.
///
/// # Errors
/// Returns a message when the address is malformed or the bind fails.
pub fn spawn(addr: &str, state: Arc<AdminState>) -> Result<String, String> {
    if let Some(host) = addr.strip_prefix("tcp:") {
        let listener = std::net::TcpListener::bind(host)
            .map_err(|e| format!("cannot bind admin endpoint on tcp:{host}: {e}"))?;
        let bound = listener
            .local_addr()
            .map(|a| format!("tcp:{a}"))
            .unwrap_or_else(|_| format!("tcp:{host}"));
        std::thread::spawn(move || {
            for stream in listener.incoming().flatten() {
                let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
                let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
                handle(stream, &state);
            }
        });
        return Ok(bound);
    }
    #[cfg(unix)]
    if let Some(path) = addr.strip_prefix("unix:") {
        let path = path.to_owned();
        // The daemon owns the path: a stale socket file from a previous
        // run would otherwise make the bind fail.
        let _ = std::fs::remove_file(&path);
        let listener = std::os::unix::net::UnixListener::bind(&path)
            .map_err(|e| format!("cannot bind admin endpoint on unix:{path}: {e}"))?;
        let bound = format!("unix:{path}");
        std::thread::spawn(move || {
            for stream in listener.incoming().flatten() {
                let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
                let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
                handle(stream, &state);
            }
        });
        return Ok(bound);
    }
    Err(format!(
        "unknown admin address '{addr}' (expected 'unix:PATH' or 'tcp:HOST:PORT')"
    ))
}

/// A one-shot HTTP/1.0 GET against an admin endpoint (`unix:PATH` or
/// `tcp:HOST:PORT`). Returns `(status code, body)`. Shared by
/// `carbon-edge watch` and the endpoint's own tests.
///
/// # Errors
/// Returns a message on connect/transport failures or an unparsable
/// response.
pub fn http_get(addr: &str, path: &str) -> Result<(u16, String), String> {
    if let Some(host) = addr.strip_prefix("tcp:") {
        let stream = std::net::TcpStream::connect(host)
            .map_err(|e| format!("cannot connect to tcp:{host}: {e}"))?;
        let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
        return fetch(stream, path);
    }
    #[cfg(unix)]
    if let Some(sock) = addr.strip_prefix("unix:") {
        let stream = std::os::unix::net::UnixStream::connect(sock)
            .map_err(|e| format!("cannot connect to unix:{sock}: {e}"))?;
        let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
        return fetch(stream, path);
    }
    Err(format!(
        "unknown admin address '{addr}' (expected 'unix:PATH' or 'tcp:HOST:PORT')"
    ))
}

/// Writes the request and parses the status line + body off `stream`.
fn fetch<S: Read + Write>(mut stream: S, path: &str) -> Result<(u16, String), String> {
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").map_err(|e| format!("request failed: {e}"))?;
    stream.flush().map_err(|e| format!("request failed: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("response failed: {e}"))?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed response: {response:.60?}"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .ok_or_else(|| "malformed response: no header terminator".to_owned())?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_with_deadline(ms: u64) -> Arc<AdminState> {
        AdminState::new(Duration::from_millis(ms))
    }

    #[test]
    fn endpoints_serve_the_published_page() {
        let state = state_with_deadline(60_000);
        state.publish("# TYPE up gauge\nup 1\n".to_owned());
        let addr = spawn("tcp:127.0.0.1:0", state.clone()).expect("bind");

        let (code, body) = http_get(&addr, "/metrics").expect("GET /metrics");
        assert_eq!(code, 200);
        assert_eq!(body, "# TYPE up gauge\nup 1\n");

        let (code, body) = http_get(&addr, "/healthz").expect("GET /healthz");
        assert_eq!((code, body.as_str()), (200, "ok\n"));

        let (code, _) = http_get(&addr, "/nope").expect("GET /nope");
        assert_eq!(code, 404);

        // The published page is hot-swappable mid-run.
        state.publish("up 0\n".to_owned());
        let (_, body) = http_get(&addr, "/metrics").expect("GET again");
        assert_eq!(body, "up 0\n");
    }

    #[test]
    fn readiness_follows_the_slot_clock() {
        let state = state_with_deadline(80);
        let addr = spawn("tcp:127.0.0.1:0", state.clone()).expect("bind");

        let (code, _) = http_get(&addr, "/readyz").expect("fresh clock");
        assert_eq!(code, 200, "just-started daemon is within its deadline");

        std::thread::sleep(Duration::from_millis(200));
        let (code, body) = http_get(&addr, "/readyz").expect("stalled clock");
        assert_eq!(code, 503, "stalled past the deadline");
        assert!(body.contains("stalled"), "body explains: {body}");

        state.touch();
        let (code, _) = http_get(&addr, "/readyz").expect("touched clock");
        assert_eq!(code, 200, "progress restores readiness");

        state.mark_done();
        std::thread::sleep(Duration::from_millis(200));
        let (code, _) = http_get(&addr, "/readyz").expect("done daemon");
        assert_eq!(code, 200, "a completed run is never stalled");
    }

    #[test]
    fn degraded_durability_flips_readiness() {
        let state = state_with_deadline(60_000);
        let addr = spawn("tcp:127.0.0.1:0", state.clone()).expect("bind");

        let (code, _) = http_get(&addr, "/readyz").expect("healthy");
        assert_eq!(code, 200);

        state.set_degraded(true);
        let (code, body) = http_get(&addr, "/readyz").expect("degraded");
        assert_eq!(code, 503, "degraded durability is not ready");
        assert!(body.contains("degraded"), "body explains: {body}");
        // Liveness is unaffected: the daemon is up, just lossy.
        let (code, _) = http_get(&addr, "/healthz").expect("alive");
        assert_eq!(code, 200);

        state.set_degraded(false);
        let (code, _) = http_get(&addr, "/readyz").expect("restored");
        assert_eq!(code, 200, "a successful checkpoint restores readiness");
    }

    #[cfg(unix)]
    #[test]
    fn unix_transport_round_trips() {
        let sock = std::env::temp_dir().join("cne-admin-test.sock");
        let addr = format!("unix:{}", sock.to_string_lossy());
        let state = state_with_deadline(60_000);
        state.publish("ok 1\n".to_owned());
        let bound = spawn(&addr, state).expect("bind unix");
        assert_eq!(bound, addr);
        let (code, body) = http_get(&addr, "/metrics").expect("GET over unix");
        assert_eq!((code, body.as_str()), (200, "ok 1\n"));
    }

    #[test]
    fn bad_addresses_are_rejected() {
        assert!(spawn("ftp:nope", state_with_deadline(1)).is_err());
        assert!(http_get("ftp:nope", "/metrics").is_err());
    }
}
