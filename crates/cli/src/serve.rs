//! `carbon-edge serve` — a long-lived streaming daemon — and
//! `carbon-edge gen-arrivals`, its seeded request-stream generator.
//!
//! The daemon reads newline-delimited JSON request lines from stdin, a
//! Unix socket, or a TCP socket, accumulates them into the open slot,
//! and closes the slot on an explicit `{"slot_end": true}` marker, a
//! `--slot-requests` count, or a `--slot-ms` wall-clock deadline. Each
//! closed slot flows through the same `ServeSession` machinery the
//! batch driver uses, so a served trace is byte-comparable to a batch
//! replay of the same arrivals. Between slots the daemon can write a
//! versioned checkpoint (`--checkpoint`/`--checkpoint-every`), halt at
//! a planned slot (`--halt-at-slot`), or catch SIGINT/SIGTERM — and a
//! later `--resume` continues the run bit-identically. With `--wal DIR`
//! every arrival is also appended to a durable write-ahead log before
//! it is applied, so `--resume` recovers bit-identically even from a
//! SIGKILL or power loss: last checkpoint + WAL-tail replay. Ingest is
//! hardened against hostile clients (`--max-line-bytes`,
//! `--max-bad-lines`), transient transport/storage failures retry with
//! backoff, and persistent storage failures flip the daemon into an
//! explicit degraded-durability mode (503 on `/readyz`) instead of
//! killing it. The wire protocol, checkpoint format, and WAL format
//! are specified in `SERVING.md`.

use std::io::BufRead as _;
use std::io::Write as _;
use std::path::Path;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cne_core::combos::Combo;
use cne_core::wal::{self, Wal, WalOptions, WalRecord};
use cne_core::wire;
use cne_core::{Checkpoint, ServeOptions, ServeSession};
use cne_edgesim::ServeMode;
use cne_faults::WallRetry;
use cne_simdata::{ArrivalGen, ArrivalProcess};
use cne_util::expo;
use cne_util::json::Json;
use cne_util::telemetry::{Recorder, Value};
use cne_util::SeedSequence;

use crate::admin::{self, AdminState};
use crate::args::Options;
use crate::commands::{build_config, build_zoo, write_telemetry};

/// Interval at which the serve loop polls for shutdown signals while
/// no request line is pending.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Slots per synthetic day for `gen-arrivals` (matches the fast-test
/// workload cadence so a 40-slot quick horizon spans 2.5 days).
const SLOTS_PER_DAY: usize = 16;

/// Bucket upper bounds for the ops latency histograms, microseconds
/// (50µs … 1s; slower observations land in the overflow bucket).
const LATENCY_BOUNDS_US: [f64; 14] = [
    50.0,
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    25_000.0,
    50_000.0,
    100_000.0,
    250_000.0,
    500_000.0,
    1_000_000.0,
];

/// Ops latency-histogram name → profiler span path, for the stages the
/// stepper times itself.
const STAGE_LATENCIES: [(&str, &str); 4] = [
    ("serve.latency.select_us", "slot/select"),
    ("serve.latency.trade_us", "slot/trade"),
    ("serve.latency.serve_us", "slot/serve"),
    ("serve.latency.feedback_us", "slot/feedback"),
];

#[cfg(unix)]
mod signals {
    //! Cooperative SIGINT/SIGTERM handling: the handler only flips an
    //! atomic flag (async-signal-safe); the serve loop polls it
    //! between slots and turns it into a checkpoint + clean exit.

    use std::sync::atomic::{AtomicBool, Ordering};

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    extern "C" fn handle(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    pub fn install() {
        // SAFETY: `signal` with a handler that only stores to an
        // atomic is async-signal-safe; both signals default to
        // process termination, so replacing them cannot lose any
        // behavior the daemon relies on.
        unsafe {
            signal(SIGINT, handle);
            signal(SIGTERM, handle);
        }
    }

    pub fn triggered() -> bool {
        SHUTDOWN.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod signals {
    pub fn install() {}

    pub fn triggered() -> bool {
        false
    }
}

/// One parsed request-stream line (see [`cne_core::wire`]). The serve
/// loop composes the zero-alloc fast path with this strict reference
/// path per `--wire-decode`.
type WireLine = wire::WireMsg;

/// Parses one line of the wire protocol through the strict reference
/// decoder — full JSON parse, canonical error strings.
fn parse_line(line: &str, num_edges: usize) -> Result<WireLine, String> {
    wire::decode_strict(line, num_edges)
}

/// Transport read buffer, and therefore the upper bound on one
/// [`LineBlock`]. Large enough to amortize syscalls and channel sends
/// over thousands of wire lines, small enough that the group-commit
/// loss window after a hard kill (arrivals applied but not yet
/// WAL-flushed — at most one block) stays well under a second of
/// stream at any realistic rate.
const READ_CHUNK: usize = 256 * 1024;

/// Longest `bad_line` snippet shipped in events, in bytes.
const SNIPPET_MAX: usize = 64;

/// A batch of complete wire lines, shipped to the serve loop as one
/// buffer: raw bytes, `\n`-separated (the final line may omit the
/// terminator at EOF), never a partial line. One channel send and one
/// allocation cover the whole block, which is what lets the ingest
/// loop run at millions of lines per second.
struct LineBlock {
    /// Raw line bytes, each line within the `--max-line-bytes` cap
    /// unless it arrived whole inside one read chunk (the serve loop
    /// re-checks per line; the cap's *memory* bound is enforced here).
    data: Vec<u8>,
    /// Stream byte offset of `data[0]`, for `bad_line` diagnostics.
    offset: u64,
}

/// What the transport reader thread hands the serve loop. Transport
/// errors have already been retried; oversized lines that could not be
/// buffered have been classified and consumed. UTF-8 and length
/// classification of in-block lines happens in the serve loop, which
/// sees the raw bytes.
enum ReaderMsg {
    /// A batch of complete wire lines.
    Block(LineBlock),
    /// A line the reader rejected without shipping — oversized; the
    /// rest of it was discarded up to the next newline. Counts against
    /// the `--max-bad-lines` budget.
    Bad {
        /// Human-readable cause, for the structured stderr event.
        reason: String,
        /// Stream byte offset where the rejected line began.
        offset: u64,
        /// Up to [`SNIPPET_MAX`] bytes of the line, lossily decoded.
        snippet: String,
    },
    /// The transport died and stayed dead through the retry budget.
    Fatal(String),
}

/// An oversized line mid-discard: `read_blocks` stopped buffering it
/// and is counting bytes until the next newline.
struct Oversize {
    /// Stream byte offset where the line began.
    offset: u64,
    /// Content bytes seen so far (excluding the newline).
    total: usize,
    /// The line's first bytes, kept for the `bad_line` event.
    snippet: Vec<u8>,
}

impl Oversize {
    fn into_msg(self, max_line: usize) -> ReaderMsg {
        ReaderMsg::Bad {
            reason: format!(
                "line exceeds --max-line-bytes {max_line} ({} bytes discarded)",
                self.total
            ),
            offset: self.offset,
            snippet: snippet_of(&self.snippet),
        }
    }
}

/// Lossily decodes the first [`SNIPPET_MAX`] bytes of a line for a
/// `bad_line` event.
fn snippet_of(line: &[u8]) -> String {
    String::from_utf8_lossy(&line[..line.len().min(SNIPPET_MAX)]).into_owned()
}

/// One rejected wire line, as recorded by [`DaemonOps::record_bad_line`].
struct BadLine<'a> {
    /// Human-readable cause (canonical strict-path or reader text).
    reason: &'a str,
    /// Absolute stream byte offset where the line began.
    offset: u64,
    /// Up to [`SNIPPET_MAX`] bytes of the line, lossily decoded.
    snippet: &'a str,
}

/// Flushes the group-commit buffer: every applied-but-unlogged arrival
/// pair of the open slot goes out as one multi-pair WAL record. The
/// write-ahead invariant holds at batch granularity — a flush always
/// precedes the slot close, checkpoint, shutdown sync, or fatal exit
/// that would otherwise leave the log behind the applied state — so
/// recovery still replays a clean prefix of the stream, and a hard
/// kill can lose at most the current block's tail.
fn flush_arrivals(
    pending: &mut Vec<(u64, u64)>,
    slot: u64,
    dur: &mut Durability,
    ops: &mut DaemonOps,
) {
    if pending.is_empty() {
        return;
    }
    dur.append(
        &WalRecord::Arrivals {
            slot,
            pairs: std::mem::take(pending),
        },
        ops,
    );
}

/// Drains one transport connection into the channel as line blocks.
/// Returns when the input ends, the receiver hangs up, or the
/// transport fails for good (after sending [`ReaderMsg::Fatal`]).
///
/// The reader never holds more than one read chunk plus one
/// `--max-line-bytes` partial line: a line that outgrows the cap
/// before its newline arrives flips into discard-and-count mode
/// ([`Oversize`]), exactly like the old bounded per-line reader.
fn pump<R: std::io::Read>(source: R, tx: &mpsc::Sender<ReaderMsg>, max_line: usize) {
    let mut reader = std::io::BufReader::with_capacity(READ_CHUNK, source);
    let retry = WallRetry::daemon_default();
    // Absolute stream offset of the next byte `fill_buf` returns.
    let mut pos: u64 = 0;
    // Partial line carried across read chunks, and its start offset.
    let mut carry: Vec<u8> = Vec::new();
    let mut carry_at: u64 = 0;
    let mut oversize: Option<Oversize> = None;
    loop {
        // Probe with retries first; `fill_buf` is then repeatable
        // without I/O while its buffer is non-empty, so the zero-copy
        // borrow below cannot hit a fresh transport error.
        let probe = retry.run(
            || match reader.fill_buf() {
                Ok(buf) => Ok(buf.len()),
                Err(e) => Err(format!("transport read failed: {e}")),
            },
            |attempt, err, delay| {
                eprintln!(
                    "{{\"event\":\"transport_retry\",\"attempt\":{attempt},\
                     \"delay_ms\":{},\"error\":{}}}",
                    delay.as_millis(),
                    Json::Str(err.to_owned()).encode()
                );
            },
        );
        let n = match probe {
            Ok(n) => n,
            Err(e) => {
                let _ = tx.send(ReaderMsg::Fatal(e));
                return;
            }
        };
        if n == 0 {
            // EOF: a pending partial line still counts (as with
            // `BufRead::lines`), and an oversized one is still bad.
            if let Some(over) = oversize.take() {
                let _ = tx.send(over.into_msg(max_line));
            } else if !carry.is_empty() {
                let _ = tx.send(ReaderMsg::Block(LineBlock {
                    data: std::mem::take(&mut carry),
                    offset: carry_at,
                }));
            }
            return;
        }
        let (msg, consumed) = {
            let chunk = match reader.fill_buf() {
                Ok(buf) => buf,
                Err(e) => {
                    let _ = tx.send(ReaderMsg::Fatal(format!("transport read failed: {e}")));
                    return;
                }
            };
            if let Some(over) = &mut oversize {
                // Discarding: count until the line's newline.
                match chunk.iter().position(|&b| b == b'\n') {
                    Some(nl) => {
                        over.total = over.total.saturating_add(nl);
                        let msg = oversize.take().expect("checked above").into_msg(max_line);
                        (Some(msg), nl + 1)
                    }
                    None => {
                        over.total = over.total.saturating_add(chunk.len());
                        (None, chunk.len())
                    }
                }
            } else {
                match chunk.iter().rposition(|&b| b == b'\n') {
                    Some(last) => {
                        // Complete lines available: ship carry + chunk
                        // up to the last newline as one block.
                        let block_at = if carry.is_empty() { pos } else { carry_at };
                        let mut data = std::mem::take(&mut carry);
                        data.extend_from_slice(&chunk[..=last]);
                        carry_at = pos + last as u64 + 1;
                        carry.extend_from_slice(&chunk[last + 1..]);
                        (
                            Some(ReaderMsg::Block(LineBlock {
                                data,
                                offset: block_at,
                            })),
                            chunk.len(),
                        )
                    }
                    None => {
                        if carry.is_empty() {
                            carry_at = pos;
                        }
                        carry.extend_from_slice(chunk);
                        (None, chunk.len())
                    }
                }
            }
        };
        reader.consume(consumed);
        pos += consumed as u64;
        // The carried partial line hit the cap: stop buffering it and
        // switch to counting (memory stays bounded by the cap).
        if oversize.is_none() && carry.len() > max_line {
            oversize = Some(Oversize {
                offset: carry_at,
                total: carry.len(),
                snippet: carry[..carry.len().min(SNIPPET_MAX)].to_vec(),
            });
            carry.clear();
            carry.shrink_to_fit();
        }
        if let Some(msg) = msg {
            if tx.send(msg).is_err() {
                return;
            }
        }
    }
}

/// Accepts one connection, retrying transient `accept()` failures with
/// backoff. Returns `None` (after sending [`ReaderMsg::Fatal`]) when
/// the listener fails for good.
fn accept_with_retry<L, S>(
    listener: &L,
    accept: impl Fn(&L) -> std::io::Result<S>,
    tx: &mpsc::Sender<ReaderMsg>,
) -> Option<S> {
    let retry = WallRetry::daemon_default();
    match retry.run(
        || accept(listener).map_err(|e| format!("accept failed: {e}")),
        |attempt, err, delay| {
            eprintln!(
                "{{\"event\":\"transport_retry\",\"attempt\":{attempt},\
                 \"delay_ms\":{},\"error\":{}}}",
                delay.as_millis(),
                Json::Str(err.to_owned()).encode()
            );
        },
    ) {
        Ok(stream) => Some(stream),
        Err(e) => {
            let _ = tx.send(ReaderMsg::Fatal(e));
            None
        }
    }
}

/// Spawns the transport reader: a thread that feeds classified request
/// lines into a channel, so the serve loop can poll deadlines and
/// signals while the transport blocks. Dropping the sender signals EOF.
fn spawn_reader(
    listen: Option<&str>,
    max_line: usize,
) -> Result<mpsc::Receiver<ReaderMsg>, String> {
    let (tx, rx) = mpsc::channel();
    match listen {
        None => {
            std::thread::spawn(move || pump(std::io::stdin(), &tx, max_line));
        }
        #[cfg(unix)]
        Some(addr) if addr.starts_with("unix:") => {
            let Some(path) = addr.strip_prefix("unix:").map(str::to_owned) else {
                return Err(format!("malformed transport address '{addr}'"));
            };
            // Stale socket files from a previous run would make bind
            // fail; the daemon owns the path.
            let _ = std::fs::remove_file(&path);
            let listener = std::os::unix::net::UnixListener::bind(&path)
                .map_err(|e| format!("cannot listen on unix:{path}: {e}"))?;
            eprintln!("serve        : listening on unix:{path}");
            std::thread::spawn(move || {
                if let Some(stream) =
                    accept_with_retry(&listener, |l| l.accept().map(|(s, _)| s), &tx)
                {
                    pump(stream, &tx, max_line);
                }
                let _ = std::fs::remove_file(&path);
            });
        }
        Some(addr) if addr.starts_with("tcp:") => {
            let Some(host) = addr.strip_prefix("tcp:").map(str::to_owned) else {
                return Err(format!("malformed transport address '{addr}'"));
            };
            let listener = std::net::TcpListener::bind(&host)
                .map_err(|e| format!("cannot listen on tcp:{host}: {e}"))?;
            eprintln!("serve        : listening on tcp:{host}");
            std::thread::spawn(move || {
                if let Some(stream) =
                    accept_with_retry(&listener, |l| l.accept().map(|(s, _)| s), &tx)
                {
                    pump(stream, &tx, max_line);
                }
            });
        }
        Some(other) => {
            return Err(format!(
                "unknown transport '{other}' (expected 'unix:PATH' or 'tcp:HOST:PORT')"
            ));
        }
    }
    Ok(rx)
}

/// The daemon's durability manager: the optional WAL handle, the
/// retry schedule shared by WAL and checkpoint writes, and the
/// degraded-durability state machine.
///
/// The state machine has two states. **Normal**: every arrival and
/// slot close is appended to the WAL before it is applied, and
/// checkpoints garbage-collect the log. **Degraded** (entered when a
/// WAL or checkpoint write keeps failing through the retry budget):
/// serving continues — availability over durability — but WAL appends
/// stop entirely, because a log with a gap would replay silently
/// wrong, which is strictly worse than a log that honestly ends.
/// `/readyz` reads 503 for the duration. The only way back to normal
/// is a fully durable checkpoint: it supersedes everything the log
/// missed, the WAL restarts fresh from its marker, and `/readyz`
/// recovers.
struct Durability {
    wal: Option<Wal>,
    retry: WallRetry,
    degraded: bool,
}

impl Durability {
    fn new(wal: Option<Wal>) -> Self {
        Self {
            wal,
            retry: WallRetry::daemon_default(),
            degraded: false,
        }
    }

    /// Appends one record ahead of applying it, retrying transient
    /// failures; a persistent failure flips the daemon to degraded.
    /// No-op without `--wal` or while degraded (see the struct docs).
    fn append(&mut self, record: &WalRecord, ops: &mut DaemonOps) {
        if self.degraded {
            return;
        }
        let Some(wal) = self.wal.as_mut() else { return };
        let retry = self.retry;
        let result = retry.run(
            || wal.append(record),
            |attempt, err, delay| {
                ops.record_wal_retry();
                eprintln!(
                    "{{\"event\":\"wal_retry\",\"attempt\":{attempt},\"delay_ms\":{},\
                     \"error\":{}}}",
                    delay.as_millis(),
                    Json::Str(err.to_owned()).encode()
                );
            },
        );
        if let Err(e) = result {
            self.degrade(ops, &format!("WAL append failed: {e}"));
        }
    }

    /// Writes the session's checkpoint durably (with retries) and
    /// prints the confirmation line. The caller decides whether a
    /// persistent failure degrades (periodic checkpoints) or aborts
    /// (halt and shutdown, where the operator asked for the state).
    fn write_checkpoint(
        &mut self,
        session: &ServeSession<'_>,
        path: &str,
        ops: &mut DaemonOps,
    ) -> Result<(), String> {
        let ckpt = session.checkpoint()?;
        let retry = self.retry;
        retry.run(
            || ckpt.save(Path::new(path)),
            |attempt, err, delay| {
                ops.record_checkpoint_retry();
                eprintln!(
                    "{{\"event\":\"checkpoint_retry\",\"attempt\":{attempt},\
                     \"delay_ms\":{},\"error\":{}}}",
                    delay.as_millis(),
                    Json::Str(err.to_owned()).encode()
                );
            },
        )?;
        println!(
            "checkpoint   : slot {} written to {path}",
            session.next_slot()
        );
        Ok(())
    }

    /// After a durable checkpoint at a slot boundary (the open
    /// accumulator is empty, so every WAL record is covered):
    /// garbage-collects the log and, if degraded, restores full
    /// durability — the checkpoint supersedes whatever the log missed.
    ///
    /// Only call at a slot boundary: GC deletes every record before
    /// the marker, which must not include open-slot arrivals.
    fn checkpoint_installed(&mut self, slot: u64, ops: &mut DaemonOps) {
        let Some(wal) = self.wal.as_mut() else {
            if self.degraded {
                self.restore(ops);
            }
            return;
        };
        let retry = self.retry;
        let result = retry.run(
            || wal.install_checkpoint(slot),
            |attempt, err, delay| {
                ops.record_wal_retry();
                eprintln!(
                    "{{\"event\":\"wal_retry\",\"attempt\":{attempt},\"delay_ms\":{},\
                     \"error\":{}}}",
                    delay.as_millis(),
                    Json::Str(err.to_owned()).encode()
                );
            },
        );
        match result {
            Ok(()) => {
                if self.degraded {
                    self.restore(ops);
                }
            }
            Err(e) => self.degrade(ops, &format!("WAL checkpoint marker failed: {e}")),
        }
    }

    /// Best-effort final fsync on clean exits, so the open slot's
    /// arrivals survive even under `--wal-sync off`/`slot`.
    fn shutdown_sync(&mut self) {
        if let Some(wal) = self.wal.as_mut() {
            if let Err(e) = wal.sync() {
                eprintln!(
                    "{{\"event\":\"wal_retry\",\"attempt\":0,\"delay_ms\":0,\"error\":{}}}",
                    Json::Str(format!("final sync failed: {e}")).encode()
                );
            }
        }
    }

    fn degrade(&mut self, ops: &mut DaemonOps, why: &str) {
        if self.degraded {
            return;
        }
        self.degraded = true;
        ops.set_degraded(true);
        eprintln!(
            "{{\"event\":\"durability_degraded\",\"error\":{}}}",
            Json::Str(why.to_owned()).encode()
        );
    }

    fn restore(&mut self, ops: &mut DaemonOps) {
        self.degraded = false;
        ops.set_degraded(false);
        eprintln!("{{\"event\":\"durability_restored\"}}");
    }
}

/// The daemon's operational side channel: a wall-clock [`Recorder`]
/// (slot/request counters, carbon and allowance gauges, per-stage
/// latency histograms, live envelope verdicts) that is rendered into
/// the admin endpoint's `/metrics` page after every slot and written
/// to the `<telemetry>.ops.jsonl` sidecar at exit. Everything here is
/// operational — the deterministic telemetry trace never sees any of
/// it, so traces stay byte-identical with observability on or off.
struct DaemonOps {
    rec: Recorder,
    admin: Option<Arc<AdminState>>,
    /// The profiler's cumulative per-stage totals after the previous
    /// slot (µs): `STAGE_LATENCIES` order, then the `slot` root.
    prev_us: [f64; 5],
}

impl DaemonOps {
    fn new(session: &ServeSession<'_>, run_seed: u64, admin: Option<Arc<AdminState>>) -> Self {
        let mut rec = Recorder::new();
        rec.set_label("policy", session.policy_name());
        rec.set_label("seed", run_seed.to_string());
        rec.set_label("stream", "ops");
        // A resumed daemon only observes slots from here on; `report`
        // restricts its live-vs-recomputed cross-check accordingly.
        rec.gauge("serve.start_slot", session.next_slot() as f64);
        rec.gauge("serve.horizon", session.horizon() as f64);
        Self {
            rec,
            admin,
            prev_us: [0.0; 5],
        }
    }

    /// Folds one closed slot into the ops recorder: counters, ledger
    /// gauges, live envelope verdicts, stage latencies — then
    /// republishes the metrics page.
    fn after_slot(&mut self, session: &mut ServeSession<'_>, requests: u64, slot_wall_us: f64) {
        self.rec.incr("serve.slots", 1);
        self.rec.incr("serve.requests", requests);
        self.rec
            .gauge("serve.next_slot", session.next_slot() as f64);

        let ledger = *session.ledger();
        self.rec.gauge("carbon.cap", ledger.cap().get());
        self.rec
            .gauge("carbon.emitted", ledger.emitted().to_allowances().get());
        self.rec.gauge("carbon.held", ledger.held().get());
        self.rec
            .gauge("carbon.slack", ledger.neutrality_slack().get());
        self.rec.gauge("allowance.bought", ledger.bought().get());
        self.rec.gauge("allowance.sold", ledger.sold().get());
        self.rec
            .gauge("market.net_cost_cents", ledger.net_trading_cost().get());

        if let Some(monitor) = session.live_monitor() {
            if let Some(lambda) = monitor.last_lambda() {
                self.rec.gauge("dual.lambda", lambda);
            }
            self.rec
                .gauge("envelope.live.fit_observed", monitor.fit_observed());
            self.rec
                .gauge("envelope.live.fit_bound", monitor.fit_bound());
            self.rec
                .gauge("envelope.live.lambda_ceiling", monitor.lambda_ceiling());
        }
        for finding in session.take_live_findings() {
            let class = if finding.excused {
                "envelope.live.excused"
            } else {
                "envelope.live.violations"
            };
            self.rec.incr(class, 1);
            self.rec
                .incr(&format!("envelope.live.{}", finding.monitor), 1);
            let mut fields: Vec<(&str, Value)> = vec![
                ("monitor", finding.monitor.into()),
                ("excused", finding.excused.into()),
            ];
            fields.extend(finding.detail.iter().cloned());
            self.rec.event(finding.slot, "envelope_live", &fields);
            // The moment-it-happened structured event for operators.
            let mut line = vec![
                ("event".to_owned(), Json::Str("envelope_breach".to_owned())),
                (
                    "slot".to_owned(),
                    finding.slot.map_or(Json::Null, Json::UInt),
                ),
                ("monitor".to_owned(), Json::Str(finding.monitor.to_owned())),
                ("excused".to_owned(), Json::Bool(finding.excused)),
            ];
            for (name, value) in &finding.detail {
                line.push(((*name).to_owned(), json_value(value)));
            }
            eprintln!("{}", Json::Obj(line).encode());
        }

        if let Some(profiler) = session.profiler() {
            for (i, (metric, path)) in STAGE_LATENCIES.iter().enumerate() {
                let total = profiler.total_us(path);
                let delta = (total - self.prev_us[i]).max(0.0);
                self.prev_us[i] = total;
                self.rec
                    .histogram_with_bounds(metric, &LATENCY_BOUNDS_US)
                    .record(delta);
            }
            let step_total = profiler.total_us("slot");
            let step = (step_total - self.prev_us[4]).max(0.0);
            self.prev_us[4] = step_total;
            // What the daemon spent around the stepper: arrival
            // ingestion, live monitoring, bookkeeping.
            self.rec
                .histogram_with_bounds("serve.latency.ingest_us", &LATENCY_BOUNDS_US)
                .record((slot_wall_us - step).max(0.0));
        }
        self.rec
            .histogram_with_bounds("serve.latency.slot_us", &LATENCY_BOUNDS_US)
            .record(slot_wall_us);
        self.publish(session);
    }

    /// Tallies one checkpoint write into the ops recorder.
    fn record_checkpoint(&mut self, wall_us: f64) {
        self.rec.incr("serve.checkpoints", 1);
        self.rec
            .histogram_with_bounds("serve.latency.checkpoint_us", &LATENCY_BOUNDS_US)
            .record(wall_us);
    }

    /// Tallies one rejected wire line and emits the structured stderr
    /// event operators alert on, carrying the absolute stream byte
    /// offset and a truncated snippet so the offending input can be
    /// located in a multi-GB stream. The same fields land in the ops
    /// recorder as a `bad_line` event (surfaced by `report`). The
    /// budget check stays with the caller.
    fn record_bad_line(&mut self, bad: &BadLine<'_>, slot: u64, total: u64, budget: u64) {
        self.rec.incr("serve.bad_lines", 1);
        self.rec.event(
            Some(slot),
            "bad_line",
            &[
                ("reason", Value::Str(bad.reason.to_owned())),
                ("offset", Value::UInt(bad.offset)),
                ("snippet", Value::Str(bad.snippet.to_owned())),
            ],
        );
        eprintln!(
            "{{\"event\":\"bad_line\",\"total\":{total},\"budget\":{budget},\"offset\":{},\
             \"snippet\":{},\"reason\":{}}}",
            bad.offset,
            Json::Str(bad.snippet.to_owned()).encode(),
            Json::Str(bad.reason.to_owned()).encode()
        );
    }

    /// Tallies raw wire input shipped by the transport reader, for the
    /// ingest throughput panel (`watch`, `/metrics`).
    fn record_ingest_bytes(&mut self, bytes: u64) {
        self.rec.incr("serve.ingest.bytes", bytes);
    }

    /// Tallies one WAL append/marker retry.
    fn record_wal_retry(&mut self) {
        self.rec.incr("serve.wal_retries", 1);
    }

    /// Tallies one checkpoint-write retry.
    fn record_checkpoint_retry(&mut self) {
        self.rec.incr("serve.checkpoint_retries", 1);
    }

    /// Publishes the degraded-durability state to the ops gauge and
    /// the admin endpoint (`/readyz` flips 503 while set).
    fn set_degraded(&mut self, on: bool) {
        self.rec.gauge("serve.degraded", if on { 1.0 } else { 0.0 });
        if let Some(state) = &self.admin {
            state.set_degraded(on);
        }
    }

    /// Renders the exposition page — the deterministic trace (when
    /// carried) plus the ops recorder — and hands it to the admin
    /// endpoint. Read-only with respect to the session.
    fn publish(&self, session: &ServeSession<'_>) {
        let Some(state) = &self.admin else { return };
        let mut recorders: Vec<&Recorder> = Vec::with_capacity(2);
        if let Some(trace) = session.telemetry() {
            recorders.push(trace);
        }
        recorders.push(&self.rec);
        let page =
            expo::render(&recorders).unwrap_or_else(|e| format!("# exposition error: {e}\n"));
        state.publish(page);
    }

    /// Marks the run complete for `/readyz` and writes the ops sidecar
    /// next to the telemetry trace (when one is being written).
    fn finish(&self, telemetry_path: Option<&str>) -> Result<(), String> {
        if let Some(state) = &self.admin {
            state.mark_done();
        }
        if let Some(trace_path) = telemetry_path {
            let path = expo::ops_sidecar_path(trace_path);
            std::fs::write(&path, self.rec.to_jsonl_string())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("ops          : operational metrics written to {path}");
        }
        Ok(())
    }
}

/// Telemetry [`Value`] → [`Json`], for the live-breach stderr events.
fn json_value(value: &Value) -> Json {
    match value {
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Int(*i),
        Value::UInt(u) => Json::UInt(*u),
        Value::Float(f) if f.is_finite() => Json::Float(*f),
        Value::Float(_) => Json::Null,
        Value::Str(s) => Json::Str(s.clone()),
    }
}

/// The one-line structured startup banner, written to stderr so it
/// never interleaves with the stdout summary or a piped trace.
fn startup_banner(
    opts: &Options,
    session: &ServeSession<'_>,
    run_seed: u64,
    scenario: Option<&str>,
    admin_addr: Option<&str>,
) {
    let opt_str = |v: Option<&str>| v.map_or(Json::Null, |s| Json::Str(s.to_owned()));
    let mut triggers = vec![Json::Str("slot_end".to_owned())];
    if let Some(n) = opts.slot_requests {
        triggers.push(Json::Str(format!("requests:{n}")));
    }
    if let Some(ms) = opts.slot_ms {
        triggers.push(Json::Str(format!("ms:{ms}")));
    }
    let banner = Json::Obj(vec![
        ("event".to_owned(), Json::Str("serve_start".to_owned())),
        ("policy".to_owned(), Json::Str(opts.policy.clone())),
        ("seed".to_owned(), Json::UInt(run_seed)),
        ("scenario".to_owned(), opt_str(scenario)),
        (
            "serve_mode".to_owned(),
            Json::Str(
                if opts.serve_per_request {
                    "per-request"
                } else {
                    "batched"
                }
                .to_owned(),
            ),
        ),
        (
            "edge_threads".to_owned(),
            Json::UInt(opts.edge_threads.unwrap_or(1) as u64),
        ),
        (
            "next_slot".to_owned(),
            Json::UInt(session.next_slot() as u64),
        ),
        ("horizon".to_owned(), Json::UInt(session.horizon() as u64)),
        ("edges".to_owned(), Json::UInt(session.num_edges() as u64)),
        (
            "listen".to_owned(),
            Json::Str(opts.listen.clone().unwrap_or_else(|| "stdin".to_owned())),
        ),
        ("admin".to_owned(), opt_str(admin_addr)),
        ("slot_triggers".to_owned(), Json::Arr(triggers)),
        ("telemetry".to_owned(), opt_str(opts.telemetry.as_deref())),
        ("checkpoint".to_owned(), opt_str(opts.checkpoint.as_deref())),
        ("wal".to_owned(), opt_str(opts.wal.as_deref())),
        ("wal_sync".to_owned(), Json::Str(opts.wal_sync.to_string())),
        (
            "wire_decode".to_owned(),
            Json::Str(opts.wire_decode.to_string()),
        ),
        (
            "max_line_bytes".to_owned(),
            Json::UInt(opts.max_line_bytes as u64),
        ),
        ("max_bad_lines".to_owned(), Json::UInt(opts.max_bad_lines)),
    ]);
    eprintln!("{}", banner.encode());
}

/// `carbon-edge serve`.
pub fn serve(opts: &Options) -> Result<(), String> {
    if opts.policy.eq_ignore_ascii_case("offline") {
        return Err("serve needs an online policy — the offline oracle \
                    requires the whole arrival sequence in advance"
            .to_owned());
    }
    let combo: Combo = opts.policy.parse().map_err(|e| format!("{e}"))?;
    if opts.checkpoint.is_none() && (opts.checkpoint_every.is_some() || opts.halt_at_slot.is_some())
    {
        return Err(
            "--checkpoint-every and --halt-at-slot need --checkpoint FILE \
                    (where should the state go?)"
                .to_owned(),
        );
    }

    let mut config = build_config(opts)?;
    if let Some(slots) = opts.slots {
        config.horizon = slots;
    }
    let zoo = build_zoo(opts);
    let scenario = config.faults.as_ref().map(|s| s.name.clone());
    let serve_opts = ServeOptions {
        serve_mode: if opts.serve_per_request {
            ServeMode::PerRequest
        } else {
            ServeMode::Batched
        },
        edge_threads: opts.edge_threads.unwrap_or(1),
        telemetry: opts.telemetry.is_some(),
        // Both feed only the ops side channel (admin endpoint, watch,
        // ops sidecar); the deterministic trace never sees them.
        live_monitor: true,
        stage_profiler: true,
    };

    let mut run_seed = opts.seed;
    let mut session = if let Some(path) = &opts.resume {
        if Path::new(path).exists() || opts.wal.is_none() {
            let ckpt = Checkpoint::load(Path::new(path))?;
            run_seed = ckpt.seed;
            let session = ServeSession::resume(config, &zoo, combo, &ckpt, &serve_opts)?;
            println!(
                "resume       : slot {} of {} from {path}",
                session.next_slot(),
                session.horizon()
            );
            session
        } else {
            // The checkpoint never made it to disk (e.g. the daemon
            // died before the first --checkpoint-every boundary), but
            // the WAL holds every arrival: recover from slot 0.
            eprintln!(
                "resume       : checkpoint {path} is missing — recovering from \
                 the WAL alone (slot 0, seed {})",
                opts.seed
            );
            ServeSession::new(config, &zoo, opts.seed, combo, &serve_opts)
        }
    } else {
        ServeSession::new(config, &zoo, opts.seed, combo, &serve_opts)
    };

    // --- durability: open the WAL and replay its tail ---------------
    let mut wal_seed_open: Option<(Vec<u64>, u64)> = None;
    let wal_handle = if let Some(dir) = &opts.wal {
        let dir_path = Path::new(dir);
        if opts.resume.is_none() && wal::dir_has_segments(dir_path) {
            return Err(format!(
                "--wal {dir}: the directory already holds WAL segments from a \
                 previous run; pass --resume to continue it, or remove the \
                 directory to genuinely start fresh"
            ));
        }
        let wal_opts = WalOptions {
            sync: opts.wal_sync,
            ..WalOptions::default()
        };
        let (wal, recovery) = Wal::open(dir_path, wal_opts)?;
        if let Some(torn) = &recovery.torn {
            eprintln!(
                "{{\"event\":\"wal_torn_tail\",\"segment\":{},\"offset\":{},\
                 \"reason\":{}}}",
                Json::Str(torn.segment.display().to_string()).encode(),
                torn.offset,
                Json::Str(torn.reason.clone()).encode()
            );
        }
        if opts.resume.is_some() {
            let tail = wal::replay(
                &recovery.records,
                session.num_edges(),
                session.next_slot() as u64,
            )?;
            if !tail.is_empty() {
                println!(
                    "wal          : replayed {} closed slot(s) and {} open-slot \
                     batch(es) from {dir}",
                    tail.closed.len(),
                    tail.open_lines
                );
            }
            session.apply_wal_tail(&tail)?;
            wal_seed_open = Some((tail.open, tail.open_lines));
        }
        Some(wal)
    } else {
        None
    };
    let mut dur = Durability::new(wal_handle);

    if let Some(k) = opts.halt_at_slot {
        if k <= session.next_slot() || k >= session.horizon() {
            return Err(format!(
                "--halt-at-slot {k} is outside the remaining run \
                 (next slot {}, horizon {})",
                session.next_slot(),
                session.horizon()
            ));
        }
    }

    signals::install();
    let admin_state = opts
        .admin
        .as_deref()
        .map(|addr| {
            let state = AdminState::new(Duration::from_millis(opts.ready_deadline_ms));
            let bound = admin::spawn(addr, state.clone())?;
            eprintln!("admin        : /metrics /healthz /readyz on {bound}");
            Ok::<_, String>((state, bound))
        })
        .transpose()?;
    let admin_addr = admin_state.as_ref().map(|(_, bound)| bound.clone());
    let mut ops = DaemonOps::new(&session, run_seed, admin_state.map(|(state, _)| state));
    startup_banner(
        opts,
        &session,
        run_seed,
        scenario.as_deref(),
        admin_addr.as_deref(),
    );
    // Publish an initial page so `/metrics` is never empty, even
    // before the first slot closes.
    ops.publish(&session);
    let rx = spawn_reader(opts.listen.as_deref(), opts.max_line_bytes)?;
    println!(
        "serve        : policy {} seed {run_seed}, slot {} of {}, {} edges",
        opts.policy,
        session.next_slot(),
        session.horizon(),
        session.num_edges()
    );

    let num_edges = session.num_edges();
    let mut open: Vec<u64> = vec![0; num_edges];
    let mut requests_in_slot: usize = 0;
    if let Some((recovered, lines)) = wal_seed_open.take() {
        // The WAL tail ended mid-slot: pre-seed the accumulator with
        // the arrivals already acknowledged for the open slot.
        open.copy_from_slice(&recovered);
        requests_in_slot = lines as usize;
    }
    let mut bad_lines: u64 = 0;
    // Group-commit buffer: arrival pairs applied to `open` but not yet
    // WAL-appended. Flushed as one multi-pair record at every block
    // boundary and before anything that closes, checkpoints, or ends
    // the slot (see `flush_arrivals`).
    let mut pending: Vec<(u64, u64)> = Vec::new();
    let use_fast = opts.wire_decode == wire::WireDecode::Fast;
    let mut deadline = opts
        .slot_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let mut eof = false;

    while !session.is_done() {
        if signals::triggered() {
            flush_arrivals(&mut pending, session.next_slot() as u64, &mut dur, &mut ops);
            if let Some(path) = &opts.checkpoint {
                dur.write_checkpoint(&session, path, &mut ops)?;
            }
            dur.shutdown_sync();
            ops.finish(opts.telemetry.as_deref())?;
            eprintln!(
                "serve        : shutdown signal at slot {} — exiting cleanly{}",
                session.next_slot(),
                if opts.checkpoint.is_some() || opts.wal.is_some() {
                    ""
                } else {
                    " (no --checkpoint path; state discarded)"
                }
            );
            return Ok(());
        }
        if eof {
            // Input ended before the horizon: pad the remaining slots
            // with zero arrivals so the run still settles cleanly.
            // (`pending` is empty here — every block was flushed when
            // it finished processing, and EOF arrives between blocks.)
            if requests_in_slot == 0 {
                open.iter_mut().for_each(|c| *c = 0);
            }
            close_slot(
                &mut session,
                &mut open,
                &mut requests_in_slot,
                &mut deadline,
                opts,
                &mut ops,
                &mut dur,
            )?;
            if let Some(k) = opts.halt_at_slot {
                if session.next_slot() == k {
                    return halt(&session, opts, &mut ops, &mut dur);
                }
            }
            continue;
        }
        let wait = match deadline {
            Some(d) => d.saturating_duration_since(Instant::now()).min(IDLE_POLL),
            None => IDLE_POLL,
        };
        let msg = match rx.recv_timeout(wait) {
            Ok(msg) => msg,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Wall-clock slot close (live mode only).
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    close_slot(
                        &mut session,
                        &mut open,
                        &mut requests_in_slot,
                        &mut deadline,
                        opts,
                        &mut ops,
                        &mut dur,
                    )?;
                    if let Some(k) = opts.halt_at_slot {
                        if session.next_slot() == k {
                            return halt(&session, opts, &mut ops, &mut dur);
                        }
                    }
                }
                continue;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                let remaining = session.horizon() - session.next_slot();
                eprintln!(
                    "serve        : input ended at slot {} — padding {remaining} \
                     remaining slot(s) with zero arrivals",
                    session.next_slot()
                );
                eof = true;
                continue;
            }
        };
        let block = match msg {
            ReaderMsg::Block(block) => block,
            ReaderMsg::Bad {
                reason,
                offset,
                snippet,
            } => {
                bad_lines += 1;
                ops.record_bad_line(
                    &BadLine {
                        reason: &reason,
                        offset,
                        snippet: &snippet,
                    },
                    session.next_slot() as u64,
                    bad_lines,
                    opts.max_bad_lines,
                );
                if bad_lines > opts.max_bad_lines {
                    flush_arrivals(&mut pending, session.next_slot() as u64, &mut dur, &mut ops);
                    return fail_serve(
                        &session,
                        opts,
                        &mut ops,
                        &mut dur,
                        format!(
                            "too many bad wire lines ({bad_lines} rejected, \
                             --max-bad-lines {})",
                            opts.max_bad_lines
                        ),
                    );
                }
                continue;
            }
            ReaderMsg::Fatal(e) => {
                return fail_serve(
                    &session,
                    opts,
                    &mut ops,
                    &mut dur,
                    format!("transport error: {e}"),
                );
            }
        };
        ops.record_ingest_bytes(block.data.len() as u64);
        let mut line_at = block.offset;
        for raw in block.data.split_inclusive(|&b| b == b'\n') {
            let at = line_at;
            line_at += raw.len() as u64;
            let line = match raw.last() {
                Some(b'\n') => &raw[..raw.len() - 1],
                _ => raw,
            };
            // The reader's memory bound only catches lines that span
            // read chunks; one that arrived whole inside a block is
            // rejected here, with the same reason and accounting.
            if line.len() > opts.max_line_bytes {
                let reason = format!(
                    "line exceeds --max-line-bytes {} ({} bytes discarded)",
                    opts.max_line_bytes,
                    line.len()
                );
                bad_lines += 1;
                ops.record_bad_line(
                    &BadLine {
                        reason: &reason,
                        offset: at,
                        snippet: &snippet_of(line),
                    },
                    session.next_slot() as u64,
                    bad_lines,
                    opts.max_bad_lines,
                );
                if bad_lines > opts.max_bad_lines {
                    flush_arrivals(&mut pending, session.next_slot() as u64, &mut dur, &mut ops);
                    return fail_serve(
                        &session,
                        opts,
                        &mut ops,
                        &mut dur,
                        format!(
                            "too many bad wire lines ({bad_lines} rejected, \
                             --max-bad-lines {})",
                            opts.max_bad_lines
                        ),
                    );
                }
                continue;
            }
            // Fast path first (`--wire-decode fast`): a hit is certain
            // to match the strict path, and is pure ASCII, so the
            // UTF-8/trim/parse pipeline below can be skipped outright.
            let fast = if use_fast {
                wire::decode_fast(line, num_edges)
            } else {
                None
            };
            let parsed = match fast {
                Some(msg) => msg,
                None => {
                    let text = match std::str::from_utf8(line) {
                        Ok(text) => text,
                        Err(_) => {
                            let reason = format!("non-UTF-8 line ({} bytes)", line.len());
                            bad_lines += 1;
                            ops.record_bad_line(
                                &BadLine {
                                    reason: &reason,
                                    offset: at,
                                    snippet: &snippet_of(line),
                                },
                                session.next_slot() as u64,
                                bad_lines,
                                opts.max_bad_lines,
                            );
                            if bad_lines > opts.max_bad_lines {
                                flush_arrivals(
                                    &mut pending,
                                    session.next_slot() as u64,
                                    &mut dur,
                                    &mut ops,
                                );
                                return fail_serve(
                                    &session,
                                    opts,
                                    &mut ops,
                                    &mut dur,
                                    format!(
                                        "too many bad wire lines ({bad_lines} rejected, \
                                         --max-bad-lines {})",
                                        opts.max_bad_lines
                                    ),
                                );
                            }
                            continue;
                        }
                    };
                    let trimmed = text.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    match parse_line(trimmed, num_edges) {
                        Ok(parsed) => parsed,
                        Err(reason) => {
                            bad_lines += 1;
                            ops.record_bad_line(
                                &BadLine {
                                    reason: &reason,
                                    offset: at,
                                    snippet: &snippet_of(line),
                                },
                                session.next_slot() as u64,
                                bad_lines,
                                opts.max_bad_lines,
                            );
                            if bad_lines > opts.max_bad_lines {
                                flush_arrivals(
                                    &mut pending,
                                    session.next_slot() as u64,
                                    &mut dur,
                                    &mut ops,
                                );
                                return fail_serve(
                                    &session,
                                    opts,
                                    &mut ops,
                                    &mut dur,
                                    format!(
                                        "too many bad wire lines ({bad_lines} rejected, \
                                         --max-bad-lines {})",
                                        opts.max_bad_lines
                                    ),
                                );
                            }
                            continue;
                        }
                    }
                }
            };
            match parsed {
                WireLine::Request { edge, count } => {
                    // Write-ahead at batch granularity: the pair joins
                    // the group-commit buffer now and is WAL-appended
                    // (one multi-pair record) before the slot closes
                    // or the block ends.
                    pending.push((edge as u64, count));
                    open[edge] += count;
                    requests_in_slot += 1;
                    if opts.slot_requests.is_some_and(|n| requests_in_slot >= n) {
                        flush_arrivals(
                            &mut pending,
                            session.next_slot() as u64,
                            &mut dur,
                            &mut ops,
                        );
                        close_slot(
                            &mut session,
                            &mut open,
                            &mut requests_in_slot,
                            &mut deadline,
                            opts,
                            &mut ops,
                            &mut dur,
                        )?;
                    }
                }
                WireLine::SlotEnd => {
                    flush_arrivals(&mut pending, session.next_slot() as u64, &mut dur, &mut ops);
                    close_slot(
                        &mut session,
                        &mut open,
                        &mut requests_in_slot,
                        &mut deadline,
                        opts,
                        &mut ops,
                        &mut dur,
                    )?;
                }
            }
            if let Some(k) = opts.halt_at_slot {
                if session.next_slot() == k {
                    return halt(&session, opts, &mut ops, &mut dur);
                }
            }
            if session.is_done() {
                break;
            }
        }
        // End of block: group-commit whatever the block accumulated
        // for the still-open slot.
        flush_arrivals(&mut pending, session.next_slot() as u64, &mut dur, &mut ops);
    }
    dur.shutdown_sync();

    let horizon = session.horizon();
    ops.finish(opts.telemetry.as_deref())?;
    let outcome = session.finish();
    println!("served       : {horizon} slots, policy {}", opts.policy);
    println!("total cost   : {:.1}", outcome.record.total_cost());
    println!(
        "violation    : {:.2} allowances",
        outcome.record.violation()
    );
    println!("switches     : {}", outcome.record.total_switches());
    println!("p1 regret    : {:.1}", outcome.p1_regret);
    if opts.telemetry.is_some() {
        println!(
            "envelopes    : {} theorem-envelope violations",
            outcome.envelope_violations
        );
    }
    if let Some(path) = &opts.telemetry {
        let rec = outcome.telemetry.expect("telemetry was requested");
        write_telemetry(path, std::slice::from_ref(&rec))?;
    }
    Ok(())
}

/// Ingests the open slot into the session, resets the accumulator and
/// the wall-clock deadline, and honors `--checkpoint-every`. The slot
/// close is WAL-appended *before* the session serves it, so recovery
/// replays exactly the slots the live run committed to; a persistent
/// periodic-checkpoint failure degrades durability instead of killing
/// the daemon.
fn close_slot(
    session: &mut ServeSession<'_>,
    open: &mut [u64],
    requests_in_slot: &mut usize,
    deadline: &mut Option<Instant>,
    opts: &Options,
    ops: &mut DaemonOps,
    dur: &mut Durability,
) -> Result<(), String> {
    let requests: u64 = open.iter().sum();
    dur.append(
        &WalRecord::SlotClose {
            slot: session.next_slot() as u64,
        },
        ops,
    );
    let started = Instant::now();
    session.push_slot(open);
    let slot_wall_us = started.elapsed().as_secs_f64() * 1e6;
    open.iter_mut().for_each(|c| *c = 0);
    *requests_in_slot = 0;
    *deadline = opts
        .slot_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    if let (Some(every), Some(path)) = (opts.checkpoint_every, &opts.checkpoint) {
        if session.next_slot() % every == 0 && !session.is_done() {
            let started = Instant::now();
            match dur.write_checkpoint(session, path, ops) {
                Ok(()) => {
                    ops.record_checkpoint(started.elapsed().as_secs_f64() * 1e6);
                    // The accumulator was just reset: a slot boundary,
                    // so the WAL can be garbage-collected.
                    dur.checkpoint_installed(session.next_slot() as u64, ops);
                }
                Err(e) => {
                    // Availability over durability: keep serving, flip
                    // /readyz, and let the next boundary try again.
                    dur.degrade(ops, &format!("checkpoint write failed: {e}"));
                }
            }
        }
    }
    ops.after_slot(session, requests, slot_wall_us);
    Ok(())
}

/// `--halt-at-slot`: write the checkpoint and exit cleanly. Unlike the
/// periodic path, a checkpoint failure here is fatal — the operator
/// asked for durable state and there is no later boundary to retry at.
fn halt(
    session: &ServeSession<'_>,
    opts: &Options,
    ops: &mut DaemonOps,
    dur: &mut Durability,
) -> Result<(), String> {
    let path = opts.checkpoint.as_deref().expect("validated at startup");
    dur.write_checkpoint(session, path, ops)?;
    // halt() runs right after close_slot: a slot boundary, so GC is
    // safe and the next resume starts from a freshly anchored WAL.
    dur.checkpoint_installed(session.next_slot() as u64, ops);
    ops.finish(opts.telemetry.as_deref())?;
    println!(
        "halt         : {} slots served, as requested — continue with \
         --resume {path}",
        session.next_slot()
    );
    Ok(())
}

/// Fatal-exit path for transport death and a blown bad-line budget:
/// preserve whatever durable state we can (final checkpoint if
/// configured, WAL fsync, ops sidecar), then surface the error.
fn fail_serve(
    session: &ServeSession<'_>,
    opts: &Options,
    ops: &mut DaemonOps,
    dur: &mut Durability,
    error: String,
) -> Result<(), String> {
    if let Some(path) = &opts.checkpoint {
        if let Err(e) = dur.write_checkpoint(session, path, ops) {
            eprintln!("serve        : final checkpoint failed: {e}");
        }
    }
    dur.shutdown_sync();
    if let Err(e) = ops.finish(opts.telemetry.as_deref()) {
        eprintln!("serve        : ops sidecar failed: {e}");
    }
    Err(error)
}

/// `carbon-edge gen-arrivals`.
pub fn gen_arrivals(opts: &Options) -> Result<(), String> {
    let process: ArrivalProcess = opts.process.parse().map_err(|e| format!("{e}"))?;
    let slots = opts.slots.unwrap_or(40);
    if opts.start_slot >= slots {
        return Err(format!(
            "--start-slot {} is past the last slot ({})",
            opts.start_slot,
            slots - 1
        ));
    }
    let peak = opts.peak.unwrap_or(120.0);
    let gen = ArrivalGen::new(
        process,
        opts.edges,
        SLOTS_PER_DAY,
        peak,
        &SeedSequence::new(opts.seed),
    );
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut io_err = |e: std::io::Error| format!("cannot write the request stream: {e}");
    for t in opts.start_slot..slots {
        for (i, &count) in gen.slot(t).iter().enumerate() {
            // Zero-count edges are omitted: the daemon defaults
            // unmentioned edges to zero arrivals.
            if count > 0 {
                writeln!(out, "{{\"edge\":{i},\"count\":{count}}}").map_err(&mut io_err)?;
            }
        }
        writeln!(out, "{{\"slot_end\":true}}").map_err(&mut io_err)?;
    }
    out.flush().map_err(&mut io_err)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_lines_parse() {
        match parse_line("{\"edge\": 2, \"count\": 7}", 4).expect("valid") {
            WireLine::Request { edge, count } => {
                assert_eq!((edge, count), (2, 7));
            }
            WireLine::SlotEnd => panic!("not a slot end"),
        }
        match parse_line("{\"edge\": 0}", 4).expect("count defaults to 1") {
            WireLine::Request { edge, count } => {
                assert_eq!((edge, count), (0, 1));
            }
            WireLine::SlotEnd => panic!("not a slot end"),
        }
        assert!(matches!(
            parse_line("{\"slot_end\": true}", 4),
            Ok(WireLine::SlotEnd)
        ));
    }

    #[test]
    fn wire_lines_reject_malformed_input() {
        assert!(parse_line("not json", 4).is_err());
        assert!(parse_line("[1, 2]", 4).is_err());
        assert!(parse_line("{\"slot_end\": false}", 4).is_err());
        assert!(parse_line("{\"count\": 3}", 4).is_err(), "edge is required");
        assert!(parse_line("{\"edge\": -1}", 4).is_err());
        assert!(parse_line("{\"edge\": 4}", 4).is_err(), "out of range");
        assert!(parse_line("{\"edge\": 1, \"count\": -2}", 4).is_err());
    }

    #[test]
    fn adversarial_wire_corpus_is_rejected_or_well_defined() {
        // Torn / partial JSON — every prefix of a valid line must be
        // rejected, never panic or mis-parse.
        let full = "{\"edge\": 3, \"count\": 17}";
        for cut in 1..full.len() {
            let prefix = &full[..cut];
            if prefix == full {
                continue;
            }
            assert!(
                parse_line(prefix, 8).is_err(),
                "torn prefix must not parse: {prefix:?}"
            );
        }

        // Duplicate keys: the first occurrence wins (the hand-rolled
        // parser keeps both; lookup is first-match). Pinned so the
        // behavior is deliberate, not accidental.
        match parse_line("{\"edge\": 1, \"edge\": 7}", 8).expect("first edge wins") {
            WireLine::Request { edge, count } => assert_eq!((edge, count), (1, 1)),
            WireLine::SlotEnd => panic!("not a slot end"),
        }
        match parse_line("{\"edge\": 0, \"count\": 2, \"count\": 9}", 8).expect("first count wins")
        {
            WireLine::Request { edge, count } => assert_eq!((edge, count), (0, 2)),
            WireLine::SlotEnd => panic!("not a slot end"),
        }

        // slot_end interleaved with request fields: slot_end takes
        // precedence regardless of field order.
        assert!(matches!(
            parse_line("{\"edge\": 1, \"slot_end\": true}", 8),
            Ok(WireLine::SlotEnd)
        ));
        assert!(matches!(
            parse_line("{\"slot_end\": true, \"count\": 5}", 8),
            Ok(WireLine::SlotEnd)
        ));
        assert!(parse_line("{\"slot_end\": 1}", 8).is_err());
        assert!(parse_line("{\"slot_end\": \"true\"}", 8).is_err());

        // Huge, negative, and non-integer edge/count values.
        assert!(
            parse_line("{\"edge\": 18446744073709551615}", 8).is_err(),
            "u64::MAX edge"
        );
        assert!(
            parse_line("{\"edge\": 99999999999999999999999}", 8).is_err(),
            "overflow"
        );
        assert!(parse_line("{\"edge\": -3}", 8).is_err());
        assert!(parse_line("{\"edge\": 1.5}", 8).is_err());
        assert!(parse_line("{\"edge\": \"1\"}", 8).is_err());
        assert!(parse_line("{\"edge\": 1, \"count\": -9223372036854775808}", 8).is_err());
        assert!(parse_line("{\"edge\": 1, \"count\": 3.7}", 8).is_err());
        assert!(parse_line("{\"edge\": 1, \"count\": null}", 8).is_err());
        // u64::MAX count is structurally valid — the accumulator is
        // u64 and the daemon's per-slot sum may saturate, but parsing
        // must not reject or wrap it.
        match parse_line("{\"edge\": 0, \"count\": 18446744073709551615}", 8).expect("valid") {
            WireLine::Request { count, .. } => assert_eq!(count, u64::MAX),
            WireLine::SlotEnd => panic!("not a slot end"),
        }

        // Structural garbage.
        for line in [
            "",
            "   ",
            "null",
            "true",
            "42",
            "\"edge\"",
            "[{\"edge\": 1}]",
            "{\"edge\": {\"nested\": 1}}",
            "{}",
            "{\"unrelated\": 1}",
            "{\"edge\": 1,}",
            "{'edge': 1}",
            "{\"edge\" 1}",
            "\u{0}\u{1}\u{2}",
        ] {
            assert!(parse_line(line, 8).is_err(), "must reject {line:?}");
        }
    }

    #[test]
    fn block_reader_ships_complete_lines() {
        use std::io::Cursor;
        // Small stream, one read chunk: one block up to the last
        // newline, then the unterminated tail flushed at EOF as its
        // own block (a final line without `\n` still counts).
        let (tx, rx) = mpsc::channel();
        pump(
            Cursor::new(b"short\nlonger line here\ntail".to_vec()),
            &tx,
            64,
        );
        drop(tx);
        let msgs: Vec<ReaderMsg> = rx.iter().collect();
        assert_eq!(msgs.len(), 2);
        match &msgs[0] {
            ReaderMsg::Block(b) => {
                assert_eq!(b.data, b"short\nlonger line here\n");
                assert_eq!(b.offset, 0);
            }
            _ => panic!("expected a block"),
        }
        match &msgs[1] {
            ReaderMsg::Block(b) => {
                assert_eq!(b.data, b"tail");
                assert_eq!(b.offset, 23);
            }
            _ => panic!("expected the EOF carry block"),
        }
    }

    #[test]
    fn block_reader_spans_chunks_with_correct_offsets() {
        use std::io::Cursor;
        // A stream larger than one read chunk: lines land in several
        // blocks, every block starts on a line boundary, offsets are
        // absolute, and reassembly is byte-identical.
        let line: &[u8] = b"{\"edge\":3,\"count\":17}\n";
        let mut stream = Vec::new();
        while stream.len() < READ_CHUNK + READ_CHUNK / 2 {
            stream.extend_from_slice(line);
        }
        let (tx, rx) = mpsc::channel();
        pump(Cursor::new(stream.clone()), &tx, 4096);
        drop(tx);
        let mut rebuilt = Vec::new();
        let mut blocks = 0;
        for msg in rx.iter() {
            match msg {
                ReaderMsg::Block(b) => {
                    assert_eq!(b.offset as usize, rebuilt.len(), "offsets are absolute");
                    assert_eq!(
                        b.data.len() % line.len(),
                        0,
                        "blocks split on line boundaries"
                    );
                    rebuilt.extend_from_slice(&b.data);
                    blocks += 1;
                }
                _ => panic!("clean stream must not produce Bad/Fatal"),
            }
        }
        assert!(blocks >= 2, "stream spans chunks");
        assert_eq!(rebuilt, stream);
    }

    #[test]
    fn block_reader_discards_oversized_spanning_lines() {
        use std::io::Cursor;
        // A line that outgrows the cap before its newline arrives is
        // discarded in counting mode: memory stays bounded, the true
        // length, stream offset, and a snippet are reported, and the
        // stream recovers at the next newline.
        let huge = READ_CHUNK + 1000;
        let mut stream = b"ok\n".to_vec();
        stream.extend_from_slice(&vec![b'y'; huge]);
        stream.push(b'\n');
        stream.extend_from_slice(b"{\"edge\":1}\n");
        let (tx, rx) = mpsc::channel();
        pump(Cursor::new(stream), &tx, 64);
        drop(tx);
        let msgs: Vec<ReaderMsg> = rx.iter().collect();
        assert_eq!(msgs.len(), 3);
        assert!(matches!(
            &msgs[0],
            ReaderMsg::Block(b) if b.data == b"ok\n" && b.offset == 0
        ));
        match &msgs[1] {
            ReaderMsg::Bad {
                reason,
                offset,
                snippet,
            } => {
                assert_eq!(
                    reason,
                    &format!("line exceeds --max-line-bytes 64 ({huge} bytes discarded)")
                );
                assert_eq!(*offset, 3);
                assert_eq!(snippet, &"y".repeat(SNIPPET_MAX));
            }
            _ => panic!("expected the oversize rejection"),
        }
        assert!(matches!(
            &msgs[2],
            ReaderMsg::Block(b)
                if b.data == b"{\"edge\":1}\n" && b.offset == 3 + huge as u64 + 1
        ));

        // Oversized with no newline before EOF: still classified.
        let (tx, rx) = mpsc::channel();
        pump(Cursor::new(vec![b'z'; READ_CHUNK + 500]), &tx, 64);
        drop(tx);
        let msgs: Vec<ReaderMsg> = rx.iter().collect();
        assert_eq!(msgs.len(), 1);
        match &msgs[0] {
            ReaderMsg::Bad { reason, offset, .. } => {
                assert!(reason.contains(&format!("{} bytes discarded", READ_CHUNK + 500)));
                assert_eq!(*offset, 0);
            }
            _ => panic!("expected the oversize rejection"),
        }
    }

    #[test]
    fn pump_ships_raw_bytes_for_consumer_classification() {
        use std::io::Cursor;
        // Non-UTF-8 bytes and overlong lines that arrived whole inside
        // a chunk are the serve loop's to classify: the reader ships
        // them raw inside the block. Only the *memory* bound — a line
        // spanning chunks past the cap — is enforced reader-side.
        let (tx, rx) = mpsc::channel();
        let mut stream = b"{\"edge\":0}\n".to_vec();
        stream.extend_from_slice(&[0xFF, 0xFE, 0x80, b'\n']); // non-UTF-8
        stream.extend_from_slice(&vec![b'z'; 300]);
        stream.push(b'\n'); // over the 128-byte cap, but in-block
        stream.extend_from_slice(b"{\"slot_end\":true}\n");
        pump(Cursor::new(stream.clone()), &tx, 128);
        drop(tx);
        let msgs: Vec<ReaderMsg> = rx.iter().collect();
        assert_eq!(msgs.len(), 1, "one chunk in, one block out");
        match &msgs[0] {
            ReaderMsg::Block(b) => {
                assert_eq!(b.data, stream);
                assert_eq!(b.offset, 0);
            }
            _ => panic!("expected a block"),
        }
    }

    #[test]
    fn generated_stream_is_deterministic_and_well_formed() {
        let gen = ArrivalGen::new(
            ArrivalProcess::Bursty,
            3,
            SLOTS_PER_DAY,
            90.0,
            &SeedSequence::new(5),
        );
        // Every generated line must round-trip through the daemon's
        // own parser, and slot counts must reconstruct exactly.
        for t in 0..20 {
            let counts = gen.slot(t);
            let mut rebuilt = vec![0u64; 3];
            for (i, &c) in counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let line = format!("{{\"edge\":{i},\"count\":{c}}}");
                match parse_line(&line, 3).expect("generated lines parse") {
                    WireLine::Request { edge, count } => rebuilt[edge] += count,
                    WireLine::SlotEnd => panic!("not a slot end"),
                }
            }
            assert_eq!(rebuilt, counts, "slot {t}");
        }
    }
}
