//! `carbon-edge watch` — a live operational dashboard for a running
//! serve daemon.
//!
//! Scrapes a daemon's admin endpoint (`--admin unix:PATH|tcp:HOST:PORT`,
//! the address given to `serve --admin`) every `--interval-ms` and
//! renders slot throughput, slot-latency quantiles, the dual variable λ
//! (with a sparkline over the scrape history), the allowance position,
//! fault counters, and the live theorem-envelope verdict summary.
//! Alternatively, point it at an ops sidecar file
//! (`<trace>.jsonl.ops.jsonl`) for a post-hoc snapshot of the same
//! dashboard. `--iterations N` stops after N refreshes (CI smoke uses
//! `--iterations 1`); the screen is only cleared between refreshes when
//! stdout is a terminal.

use std::io::IsTerminal as _;
use std::time::{Duration, Instant};

use cne_util::expo::{self, Exposition};
use cne_util::telemetry::{parse_jsonl, Recorder};

use crate::admin;
use crate::args::Options;
use crate::report::sparkline;

/// Where the dashboard reads its metrics from.
enum Source {
    /// A serve daemon's admin endpoint.
    Admin(String),
    /// An ops sidecar JSONL file.
    File(String),
}

/// Runs the subcommand.
///
/// # Errors
/// Returns a message when no source is given, the endpoint or file is
/// unreachable, or the exposition fails to parse.
pub fn watch(opts: &Options) -> Result<(), String> {
    let source = match (&opts.admin, opts.inputs.as_slice()) {
        (Some(addr), []) => Source::Admin(addr.clone()),
        (None, [path]) => Source::File(path.clone()),
        (Some(_), _) => {
            return Err("watch takes --admin ADDR or one sidecar file, not both".to_owned());
        }
        (None, _) => {
            return Err("watch needs a source: --admin unix:PATH|tcp:HOST:PORT \
                        (a daemon started with 'serve --admin') or one ops \
                        sidecar file (<trace>.ops.jsonl)"
                .to_owned());
        }
    };
    let label = match &source {
        Source::Admin(addr) => addr.clone(),
        Source::File(path) => path.clone(),
    };

    let mut lambda_history: Vec<f64> = Vec::new();
    let mut prev_sample: Option<FlowSample> = None;
    let mut refresh = 0u64;
    loop {
        let page = scrape(&source)?;
        refresh += 1;
        if let Some(lambda) = metric(&page, "dual.lambda") {
            lambda_history.push(lambda);
        }
        let sample = FlowSample {
            at: Instant::now(),
            slots: metric(&page, "serve.slots").unwrap_or(0.0),
            requests: metric(&page, "serve.requests").unwrap_or(0.0),
            bytes: metric(&page, "serve.ingest.bytes").unwrap_or(0.0),
            bad: metric(&page, "serve.bad_lines").unwrap_or(0.0),
        };
        let flow = prev_sample.as_ref().and_then(|was| was.rates_to(&sample));
        prev_sample = Some(sample);
        render_dashboard(&page, &label, refresh, flow.as_ref(), &lambda_history);
        if opts.iterations.is_some_and(|n| refresh >= n) {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(opts.interval_ms));
    }
}

/// Fetches and parses one metrics snapshot.
fn scrape(source: &Source) -> Result<Exposition, String> {
    match source {
        Source::Admin(addr) => {
            let (code, body) = admin::http_get(addr, "/metrics")?;
            if code != 200 {
                return Err(format!("{addr} /metrics returned HTTP {code}"));
            }
            expo::parse(&body).map_err(|e| format!("{addr} /metrics: {e}"))
        }
        Source::File(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let recorders = parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
            let refs: Vec<&Recorder> = recorders.iter().collect();
            let rendered = expo::render(&refs)?;
            expo::parse(&rendered).map_err(|e| format!("{path}: {e}"))
        }
    }
}

/// One scrape's flow counters, for rate computation between refreshes.
struct FlowSample {
    at: Instant,
    slots: f64,
    requests: f64,
    bytes: f64,
    bad: f64,
}

/// Per-second deltas between two consecutive scrapes.
struct FlowRates {
    slots: f64,
    requests: f64,
    bytes: f64,
    bad: f64,
}

impl FlowSample {
    /// Rates from this sample to a newer one; `None` until time has
    /// visibly passed.
    fn rates_to(&self, now: &FlowSample) -> Option<FlowRates> {
        let dt = now.at.duration_since(self.at).as_secs_f64();
        (dt > 0.0).then(|| FlowRates {
            slots: (now.slots - self.slots) / dt,
            requests: (now.requests - self.requests) / dt,
            bytes: (now.bytes - self.bytes) / dt,
            bad: (now.bad - self.bad) / dt,
        })
    }
}

/// The first sample of the (sanitized) metric, any labels.
fn metric(page: &Exposition, raw: &str) -> Option<f64> {
    page.value(&expo::sanitize_name(raw), &[])
}

/// Microseconds, humanized: `812µs`, `2.3ms`, `1.2s`.
fn fmt_us(us: f64) -> String {
    if us < 1_000.0 {
        format!("{us:.0}µs")
    } else if us < 1_000_000.0 {
        format!("{:.1}ms", us / 1_000.0)
    } else {
        format!("{:.2}s", us / 1_000_000.0)
    }
}

/// Bytes, humanized: `640B`, `4.2KiB`, `1.5MiB`, `2.10GiB`.
fn fmt_bytes(b: f64) -> String {
    const KI: f64 = 1024.0;
    if b < KI {
        format!("{b:.0}B")
    } else if b < KI * KI {
        format!("{:.1}KiB", b / KI)
    } else if b < KI * KI * KI {
        format!("{:.1}MiB", b / (KI * KI))
    } else {
        format!("{:.2}GiB", b / (KI * KI * KI))
    }
}

/// Renders one dashboard frame to stdout.
fn render_dashboard(
    page: &Exposition,
    label: &str,
    refresh: u64,
    flow: Option<&FlowRates>,
    lambda_history: &[f64],
) {
    if std::io::stdout().is_terminal() {
        print!("\x1b[2J\x1b[H");
    }
    let m = |raw: &str| metric(page, raw);
    println!("carbon-edge watch — {label} (refresh {refresh})");

    let slots = m("serve.slots").unwrap_or(0.0);
    let of = m("serve.horizon").map_or(String::new(), |h| format!(" of {h:.0}"));
    let rate = flow.map_or("rate —".to_owned(), |f| format!("{:.2} slots/s", f.slots));
    let requests = m("serve.requests").unwrap_or(0.0);
    println!("slots        : {slots:.0}{of} served, {requests:.0} requests   ({rate})");

    let bad_total = m("serve.bad_lines").unwrap_or(0.0);
    if let Some(bytes_total) = m("serve.ingest.bytes") {
        let totals = format!("{} in, {bad_total:.0} bad lines", fmt_bytes(bytes_total));
        match flow {
            Some(f) => println!(
                "ingest       : {:.0} req/s  {}/s  {:.2} bad/s   ({totals})",
                f.requests,
                fmt_bytes(f.bytes),
                f.bad
            ),
            None => println!("ingest       : {totals}"),
        }
    }

    if let Some(h) = page.histogram_view(&expo::sanitize_name("serve.latency.slot_us"), &[]) {
        let q = |x: f64| h.quantile(x).map_or("—".to_owned(), fmt_us);
        println!(
            "slot latency : p50 {}  p99 {}  over {:.0} slots",
            q(0.5),
            q(0.99),
            h.count
        );
    }

    if let Some(lambda) = m("dual.lambda") {
        let ceiling = m("envelope.live.lambda_ceiling")
            .map_or(String::new(), |c| format!("  ceiling {c:.2}"));
        println!(
            "dual λ       : {lambda:.3}  {}{ceiling}",
            sparkline(lambda_history, 40)
        );
    }

    if let Some(held) = m("carbon.held") {
        println!(
            "allowances   : held {held:.1}  emitted {:.1}  slack {:+.1}  \
             bought {:.1}  sold {:.1}  cash {:.1}¢",
            m("carbon.emitted").unwrap_or(0.0),
            m("carbon.slack").unwrap_or(0.0),
            m("allowance.bought").unwrap_or(0.0),
            m("allowance.sold").unwrap_or(0.0),
            m("market.net_cost_cents").unwrap_or(0.0),
        );
    }

    let injected = m("faults.injected").unwrap_or(0.0);
    if injected > 0.0 {
        println!(
            "faults       : {injected:.0} injected, {:.0} recovered",
            m("faults.recoveries").unwrap_or(0.0)
        );
    }

    let violations = m("envelope.live.violations").unwrap_or(0.0);
    let excused = m("envelope.live.excused").unwrap_or(0.0);
    let mut breakdown: Vec<String> = Vec::new();
    for monitor in ["block_boundary", "trade_bounds", "dual_sanity", "thm2_fit"] {
        if let Some(n) = m(&format!("envelope.live.{monitor}")) {
            if n > 0.0 {
                breakdown.push(format!("{monitor} {n:.0}"));
            }
        }
    }
    let detail = if breakdown.is_empty() {
        String::new()
    } else {
        format!("  ({})", breakdown.join(", "))
    };
    let fit = match (
        m("envelope.live.fit_observed"),
        m("envelope.live.fit_bound"),
    ) {
        (Some(obs), Some(bound)) => format!("  fit {obs:.1}/{bound:.1}"),
        _ => String::new(),
    };
    println!("envelopes    : {violations:.0} violations, {excused:.0} excused{detail}{fit}");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An ops-shaped recorder with enough series to light up every
    /// dashboard line.
    fn ops_recorder() -> Recorder {
        let mut rec = Recorder::new();
        rec.set_label("policy", "ours");
        rec.set_label("seed", "1");
        rec.set_label("stream", "ops");
        rec.incr("serve.slots", 17);
        rec.incr("serve.requests", 1234);
        rec.incr("serve.ingest.bytes", 28_400);
        rec.incr("serve.bad_lines", 3);
        rec.gauge("serve.horizon", 40.0);
        rec.gauge("dual.lambda", 0.42);
        rec.gauge("envelope.live.lambda_ceiling", 1.8);
        rec.gauge("carbon.held", 12.0);
        rec.gauge("carbon.emitted", 9.8);
        rec.gauge("carbon.slack", 2.2);
        rec.gauge("allowance.bought", 3.0);
        rec.gauge("allowance.sold", 1.0);
        rec.gauge("market.net_cost_cents", 55.0);
        rec.incr("envelope.live.excused", 2);
        rec.incr("envelope.live.block_boundary", 2);
        let h = rec.histogram_with_bounds("serve.latency.slot_us", &[100.0, 1000.0, 10_000.0]);
        for x in [80.0, 550.0, 700.0, 900.0, 4_000.0] {
            h.record(x);
        }
        rec
    }

    #[test]
    fn metrics_survive_the_exposition_round_trip() {
        let rec = ops_recorder();
        let text = expo::render(&[&rec]).expect("render");
        let page = expo::parse(&text).expect("parse");
        assert_eq!(metric(&page, "serve.slots"), Some(17.0));
        assert_eq!(metric(&page, "serve.ingest.bytes"), Some(28_400.0));
        assert_eq!(metric(&page, "serve.bad_lines"), Some(3.0));
        assert_eq!(metric(&page, "dual.lambda"), Some(0.42));
        assert_eq!(metric(&page, "envelope.live.excused"), Some(2.0));
        let h = page
            .histogram_view(&expo::sanitize_name("serve.latency.slot_us"), &[])
            .expect("latency histogram");
        assert_eq!(h.count, 5.0);
        assert!(h.quantile(0.5).is_some());
        // Silent on series the page does not carry.
        assert_eq!(metric(&page, "faults.injected"), None);
    }

    #[test]
    fn humanized_latencies() {
        assert_eq!(fmt_us(812.0), "812µs");
        assert_eq!(fmt_us(2_300.0), "2.3ms");
        assert_eq!(fmt_us(1_200_000.0), "1.20s");
    }

    #[test]
    fn file_mode_renders_an_ops_sidecar() {
        let dir = std::env::temp_dir().join("cne-watch-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("served.jsonl.ops.jsonl");
        std::fs::write(&path, ops_recorder().to_jsonl_string()).expect("write sidecar");
        let opts = Options {
            inputs: vec![path.to_string_lossy().into_owned()],
            iterations: Some(1),
            ..Options::default()
        };
        watch(&opts).expect("one dashboard frame from a file");
    }

    #[test]
    fn watch_requires_exactly_one_source() {
        let none = Options::default();
        assert!(watch(&none).is_err(), "no source is an error");
        let both = Options {
            admin: Some("tcp:127.0.0.1:1".to_owned()),
            inputs: vec!["x.jsonl".to_owned()],
            ..Options::default()
        };
        assert!(watch(&both).is_err(), "two sources are an error");
    }

    #[test]
    fn admin_mode_scrapes_a_live_endpoint() {
        let rec = ops_recorder();
        let state = admin::AdminState::new(Duration::from_secs(60));
        state.publish(expo::render(&[&rec]).expect("render"));
        let addr = admin::spawn("tcp:127.0.0.1:0", state).expect("bind");
        let opts = Options {
            admin: Some(addr),
            iterations: Some(2),
            interval_ms: 10,
            ..Options::default()
        };
        watch(&opts).expect("two dashboard frames over HTTP");
    }
}
