//! The CLI subcommands.

use std::io::Write as _;

use cne_core::combos::Combo;
use cne_core::runner::{evaluate_many_with, EvalOptions, EvalReport, PolicySpec};
use cne_edgesim::{ServeMode, SimConfig};
use cne_faults::FaultScenario;
use cne_nn::{ModelZoo, ZooConfig};
use cne_util::span::{profile_sidecar_path, Profiler};
use cne_util::telemetry::Recorder;
use cne_util::SeedSequence;

use crate::args::Options;

/// Prints usage.
pub fn print_help() {
    println!(
        "carbon-edge — carbon-neutral edge AI inference simulator

USAGE:
  carbon-edge <command> [flags]

COMMANDS:
  run          evaluate one policy (default: ours) and print its summary
  compare      evaluate all 13 policies + Offline and print a ranked table
  serve        long-lived streaming daemon: read request lines from stdin
               or a socket, decide online, checkpoint/resume mid-run
  watch        live dashboard for a running serve daemon (scrapes its
               --admin endpoint, or reads an ops sidecar file)
  gen-arrivals emit a seeded JSONL request stream for serve (diurnal,
               bursty, or heavy-tail arrival process)
  report       analyze a telemetry trace: timings, regret vs theory, λ
  bench-check  compare a BENCH_*.json run against its committed baseline
  zoo          train and print the model zoo
  help         show this message

FLAGS:
  --task mnist|cifar    inference task              (default mnist)
  --edges N             number of edges             (default 10)
  --seeds K             seeds averaged, 1..=K       (default 3)
  --policy NAME         run: ours | offline | ucb-ly | ran-ran | …
  --quantized           extend the zoo with 8-bit quantized variants
  --quick               reduced fast-test scale (fast zoo, 40 slots)
  --out FILE.tsv        run: write the per-slot series to a TSV
  --threads N           worker threads for seed runs (default: the
                        CARBON_EDGE_THREADS env var, else all cores;
                        results are identical at any thread count)
  --edge-threads N      edge-shard workers inside each run's per-slot
                        serve/select loop (default: the
                        CARBON_EDGE_EDGE_THREADS env var, else 1);
                        records and traces are bit-identical at any
                        count, and threads x edge-threads is capped at
                        the available cores with a warning
  --gate-batch K        slots each edge worker runs per epoch-gate
                        handshake (default: the CARBON_EDGE_GATE_BATCH
                        env var, else 8); a pure scheduling knob —
                        results are bit-identical at any window size
  --telemetry F.jsonl   write per-run JSONL traces (switches, trades,
                        violations, regret, envelope monitors); also
                        writes wall-clock span profiles to
                        F.profile.jsonl
  --profile F.jsonl     write the span-profile stream to this path
                        instead (timings are non-deterministic, so
                        they never share a file with the trace)
  --serve-per-request   run/compare: serve streams through the legacy
                        per-request path (bit-identical to the default
                        batched statistics; for equivalence debugging)
  --faults FILE.json    run/compare: inject a deterministic fault
                        scenario (edge outages, workload surges, model
                        download failures, lost feedback, market halts
                        and rejections); the schedule derives from the
                        run seed, so a (seed, scenario) pair replays
                        bit-identically at any thread count
  --strict              report: exit non-zero on envelope violations
  --svg-dir DIR         report: also render SVG charts into DIR
  --tolerance T         bench-check: relative tolerance for gated
                        wall-clock entries (default 0.25)
  --seed S              serve/gen-arrivals: the single run seed
                        (default 1)
  --slots T             serve: horizon override; gen-arrivals: slots to
                        emit (default 40)
  --listen ADDR         serve: read the request stream from unix:PATH
                        or tcp:HOST:PORT instead of stdin
  --slot-requests N     serve: close the open slot after N request
                        lines (an explicit slot_end closes it sooner)
  --slot-ms M           serve: close the open slot after M wall-clock
                        milliseconds (live mode; not replayable)
  --checkpoint FILE     serve: write controller+ledger+dual state here
  --checkpoint-every N  serve: rewrite the checkpoint every N slots
  --resume FILE         serve: continue bit-identically from a
                        checkpoint written by an earlier serve (with
                        --wal, also replays the WAL tail past it)
  --wal DIR             serve: append every arrival to a write-ahead
                        log in DIR before applying it, so --resume
                        recovers bit-identically even from SIGKILL
  --wal-sync POLICY     serve: WAL fsync policy — every (each frame),
                        slot (each slot close; default), off (kernel
                        writeback only; still SIGKILL-safe)
  --max-line-bytes N    serve: reject wire lines longer than N bytes
                        (default 65536; hostile input is discarded
                        without buffering it)
  --wire-decode MODE    serve: wire decoder pipeline — fast (zero-alloc
                        recognizer with strict fallback; default) or
                        strict (reference JSON path only; for decoder
                        cross-checks — both produce identical traces)
  --max-bad-lines N     serve: exit with an error after N rejected
                        wire lines (default 100; each is counted,
                        logged, and skipped — not fatal on its own)
  --halt-at-slot K      serve: checkpoint and exit once K slots are
                        served (planned handoffs, resume drills, CI)
  --admin ADDR          serve: expose /metrics, /healthz and /readyz on
                        unix:PATH or tcp:HOST:PORT, off the serve path
                        (traces stay byte-identical with it on or off);
                        with --telemetry, operational metrics are also
                        written to F.jsonl.ops.jsonl at exit
  --ready-deadline-ms N serve: /readyz turns 503 when no slot completed
                        for N ms (default 5000)
  --interval-ms N       watch: refresh every N ms (default 1000)
  --iterations N        watch: stop after N refreshes (default: forever)
  --process NAME        gen-arrivals: diurnal | bursty | heavy-tail
  --start-slot K        gen-arrivals: emit slots K.. only (a resume
                        tail; identical to the suffix of a full stream)
  --peak P              gen-arrivals: busiest-edge peak slot count
                        (default 120)

EXAMPLES:
  carbon-edge run --policy ours --edges 10 --seeds 5
  carbon-edge compare --quick --threads 4
  carbon-edge run --quick --edges 50 --seeds 1 --edge-threads 4 --gate-batch 16
  carbon-edge run --quick --telemetry trace.jsonl
  carbon-edge run --quick --faults scenarios/ci_smoke.json --telemetry trace.jsonl
  carbon-edge gen-arrivals --edges 4 --slots 40 | carbon-edge serve \\
      --quick --edges 4 --telemetry served.jsonl
  carbon-edge serve --quick --checkpoint state.ckpt --checkpoint-every 10
  carbon-edge serve --quick --checkpoint state.ckpt --checkpoint-every 10 \\
      --wal state.wal --wal-sync slot
  carbon-edge serve --quick --resume state.ckpt --wal state.wal \\
      --telemetry served.jsonl
  carbon-edge serve --quick --admin tcp:127.0.0.1:9100 &
  carbon-edge watch --admin tcp:127.0.0.1:9100 --interval-ms 500
  carbon-edge report trace.jsonl --strict
  carbon-edge bench-check results/BENCH_e2e.json /tmp/bench/BENCH_e2e.json
  carbon-edge zoo --task cifar --quantized"
    );
}

pub(crate) fn build_zoo(opts: &Options) -> ModelZoo {
    let config = if opts.quick {
        ZooConfig::fast()
    } else {
        ZooConfig::default()
    };
    eprintln!("training the {} model zoo…", opts.task.name());
    let zoo = ModelZoo::train(opts.task, &config, &SeedSequence::new(2025));
    if opts.quantized {
        zoo.with_quantized_variants(8)
    } else {
        zoo
    }
}

pub(crate) fn build_config(opts: &Options) -> Result<SimConfig, String> {
    let mut cfg = if opts.quick {
        let mut cfg = SimConfig::fast_test(opts.task);
        cfg.num_edges = opts.edges;
        cfg
    } else {
        SimConfig::paper_default(opts.task, opts.edges)
    };
    cfg.faults = load_fault_scenario(opts.faults.as_deref())?;
    Ok(cfg)
}

/// Loads `--faults SCENARIO.json` into a validated scenario, mapping
/// I/O and schema failures to actionable messages.
fn load_fault_scenario(path: Option<&str>) -> Result<Option<FaultScenario>, String> {
    let Some(path) = path else { return Ok(None) };
    let text = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "cannot read fault scenario {path}: {e}\n\
             hint: pass --faults a JSON file like scenarios/ci_smoke.json \
             (all fields optional, e.g. {{\"edge_outage_rate\": 0.05}})"
        )
    })?;
    let scenario = FaultScenario::from_json_str(&text).map_err(|e| {
        format!(
            "fault scenario {path} is invalid: {e}\n\
             hint: see scenarios/ci_smoke.json or the FaultScenario docs \
             for the schema (rates in [0, 1], integer retry/backoff knobs)"
        )
    })?;
    Ok(Some(scenario))
}

fn parse_spec(name: &str) -> Result<PolicySpec, String> {
    if name.eq_ignore_ascii_case("offline") {
        return Ok(PolicySpec::Offline);
    }
    name.parse::<Combo>()
        .map(PolicySpec::Combo)
        .map_err(|e| e.to_string())
}

fn eval_options(opts: &Options) -> EvalOptions {
    EvalOptions {
        threads: opts.threads,
        edge_threads: opts.edge_threads,
        gate_batch: opts.gate_batch,
        telemetry: opts.telemetry.is_some(),
        profile: opts.profile.is_some() || opts.telemetry.is_some(),
        progress: true,
        serve_mode: if opts.serve_per_request {
            ServeMode::PerRequest
        } else {
            ServeMode::Batched
        },
    }
}

/// Writes every run's recorder to one JSONL file, in `(spec, seed)`
/// order, and prints a confirmation line.
pub(crate) fn write_telemetry(path: &str, recorders: &[Recorder]) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    let mut sink = std::io::BufWriter::new(file);
    for rec in recorders {
        rec.write_jsonl(&mut sink)
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    sink.flush()
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    println!(
        "telemetry    : {} run traces written to {path}",
        recorders.len()
    );
    Ok(())
}

/// Writes every run's span profiler to the requested `--profile` path,
/// or to the telemetry file's `.profile.jsonl` sidecar. Timing data is
/// non-deterministic, which is why it never shares a file with the
/// trace.
fn write_profiles(opts: &Options, profiles: &[Profiler]) -> Result<(), String> {
    let path = match (&opts.profile, &opts.telemetry) {
        (Some(path), _) => path.clone(),
        (None, Some(trace)) => profile_sidecar_path(trace),
        (None, None) => return Ok(()),
    };
    if profiles.is_empty() {
        return Ok(());
    }
    let file = std::fs::File::create(&path).map_err(|e| format!("cannot create {path}: {e}"))?;
    let mut sink = std::io::BufWriter::new(file);
    for prof in profiles {
        prof.write_jsonl(&mut sink)
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    sink.flush()
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    println!(
        "profiles     : {} span profiles written to {path}",
        profiles.len()
    );
    Ok(())
}

/// `carbon-edge run`.
pub fn run(opts: &Options) -> Result<(), String> {
    let spec = parse_spec(&opts.policy)?;
    let config = build_config(opts)?;
    let zoo = build_zoo(opts);
    let EvalReport {
        results,
        telemetry,
        profiles,
        // The driver already surfaced any oversubscription warning on
        // stderr as the runs started.
        warnings: _,
    } = evaluate_many_with(
        &config,
        &zoo,
        &opts.seed_list(),
        std::slice::from_ref(&spec),
        &eval_options(opts),
    );
    let result = &results[0];

    println!("policy       : {}", result.name);
    println!(
        "system       : {} edges, {} slots, cap {}, {} models, {} seeds",
        config.num_edges,
        config.horizon,
        config.cap.get(),
        zoo.len(),
        opts.seeds
    );
    println!(
        "total cost   : {:.1} ± {:.1}",
        result.mean_total_cost, result.std_total_cost
    );
    println!("violation    : {:.2} allowances", result.mean_violation);
    println!("switches     : {:.1}", result.mean_switches);
    println!(
        "unit price   : {:.2} ¢/allowance bought",
        result.mean_unit_purchase_cost
    );
    let mean_acc =
        result.mean_accuracy.iter().sum::<f64>() / result.mean_accuracy.len().max(1) as f64;
    println!("accuracy     : {mean_acc:.3}");
    if opts.telemetry.is_some() {
        println!(
            "envelopes    : {} theorem-envelope violations",
            result.envelope_violations
        );
    }

    if let Some(path) = &opts.out {
        let mut f =
            std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        writeln!(f, "t\tcumulative_cost\taccuracy\tnet_purchase\tarrivals")
            .map_err(|e| e.to_string())?;
        for t in 0..config.horizon {
            writeln!(
                f,
                "{t}\t{:.6}\t{:.6}\t{:.6}\t{:.1}",
                result.mean_cumulative_cost[t],
                result.mean_accuracy[t],
                result.mean_net_purchase[t],
                result.mean_arrivals[t]
            )
            .map_err(|e| e.to_string())?;
        }
        println!("series       : written to {path}");
    }
    if let Some(path) = &opts.telemetry {
        write_telemetry(path, &telemetry)?;
    }
    write_profiles(opts, &profiles)?;
    Ok(())
}

/// `carbon-edge compare`.
pub fn compare(opts: &Options) -> Result<(), String> {
    let config = build_config(opts)?;
    let zoo = build_zoo(opts);
    let mut specs: Vec<PolicySpec> = Combo::all_baselines()
        .into_iter()
        .map(PolicySpec::Combo)
        .collect();
    specs.push(PolicySpec::Combo(Combo::ours()));
    specs.push(PolicySpec::Offline);

    let EvalReport {
        results,
        telemetry,
        profiles,
        warnings: _,
    } = evaluate_many_with(
        &config,
        &zoo,
        &opts.seed_list(),
        &specs,
        &eval_options(opts),
    );
    let mut rows: Vec<_> = results
        .iter()
        .map(|r| {
            (
                r.name.clone(),
                r.mean_total_cost,
                r.mean_violation,
                r.mean_switches,
                r.envelope_violations,
            )
        })
        .collect();
    rows.sort_by(|a, b| a.1.total_cmp(&b.1));
    if let Some(path) = &opts.telemetry {
        write_telemetry(path, &telemetry)?;
    }
    write_profiles(opts, &profiles)?;

    println!(
        "\n{:<12} {:>12} {:>11} {:>10} {:>10}",
        "policy", "total cost", "violation", "switches", "envelopes"
    );
    for (name, cost, violation, switches, envelopes) in &rows {
        println!("{name:<12} {cost:>12.1} {violation:>11.2} {switches:>10.1} {envelopes:>10}");
    }
    Ok(())
}

/// `carbon-edge zoo`.
pub fn zoo(opts: &Options) -> Result<(), String> {
    let zoo = build_zoo(opts);
    println!(
        "{:<16} {:>8} {:>8} {:>12} {:>10} {:>9} {:>9}",
        "model", "E[loss]", "acc", "φ kWh/sample", "lat ms", "size MB", "params"
    );
    for m in zoo.models() {
        println!(
            "{:<16} {:>8.3} {:>8.3} {:>12.2e} {:>10.0} {:>9.2} {:>9}",
            m.profile.name,
            m.eval.expected_loss(),
            m.eval.accuracy(),
            m.profile.energy_per_sample.get(),
            m.profile.base_latency.get(),
            m.profile.size.get(),
            m.profile.param_count,
        );
    }
    Ok(())
}
