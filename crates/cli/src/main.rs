//! `carbon-edge` — command-line driver for the carbon-neutral edge
//! inference simulator.
//!
//! ```text
//! carbon-edge run     --policy ours --edges 10 --seeds 5 [--task mnist|cifar]
//! carbon-edge compare --edges 10 --seeds 3
//! carbon-edge serve   --quick --seed 1 [--listen unix:PATH|tcp:ADDR]
//!                     [--admin unix:PATH|tcp:ADDR --ready-deadline-ms N]
//!                     [--checkpoint F --checkpoint-every N] [--resume F]
//!                     [--wal DIR --wal-sync every|slot|off]
//!                     [--max-line-bytes N] [--max-bad-lines N]
//!                     [--wire-decode fast|strict]
//! carbon-edge watch   --admin unix:PATH|tcp:ADDR [--interval-ms N]
//!                     [--iterations N]   (or: carbon-edge watch OPS.jsonl)
//! carbon-edge gen-arrivals --process diurnal --edges 10 --slots 40 --seed 1
//! carbon-edge report  trace.jsonl [--strict] [--svg-dir charts]
//! carbon-edge bench-check baseline.json current.json [--tolerance T]
//! carbon-edge zoo     --task cifar [--quantized]
//! carbon-edge help
//! ```

use std::process::ExitCode;

mod admin;
mod args;
mod bench_check;
mod commands;
mod report;
mod serve;
mod watch;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        commands::print_help();
        return ExitCode::FAILURE;
    };
    let opts = match args::Options::parse(rest) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "run" => commands::run(&opts),
        "compare" => commands::compare(&opts),
        "serve" => serve::serve(&opts),
        "watch" => watch::watch(&opts),
        "gen-arrivals" => serve::gen_arrivals(&opts),
        "report" => report::report(&opts),
        "bench-check" => bench_check::bench_check(&opts),
        "zoo" => commands::zoo(&opts),
        "help" | "--help" | "-h" => {
            commands::print_help();
            Ok(())
        }
        other => Err(format!(
            "unknown command '{other}' (try 'carbon-edge help')"
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
