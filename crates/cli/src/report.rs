//! `carbon-edge report` — offline analysis of a telemetry trace.
//!
//! Ingests the JSONL trace written by `--telemetry` (and, when present,
//! the `.profile.jsonl` wall-clock sidecar) and renders per-run
//! diagnostics as aligned text tables: per-stage timing aggregates, run
//! summaries, regret versus the theorem envelopes, the dual-variable
//! trajectory, switch cadence versus the block schedule, and the
//! emissions/allowance position. With `--svg-dir` the λ trajectories
//! are also rendered as an SVG line chart, and with `--strict` any
//! theorem-envelope violation in the trace makes the command fail.

use cne_bench::plot::{LineChart, Series};
use cne_util::expo::ops_sidecar_path;
use cne_util::span::{parse_profile_jsonl, profile_sidecar_path, ProfileRun};
use cne_util::telemetry::{parse_jsonl, Event, Recorder, Value};

use crate::args::Options;

/// Eight-level block characters for text sparklines.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Runs the subcommand. The first positional argument is the trace
/// path.
///
/// # Errors
/// Returns a message (→ non-zero exit) when the trace is missing or
/// malformed, or when `--strict` is set and the trace contains
/// theorem-envelope violations.
pub fn report(opts: &Options) -> Result<(), String> {
    let [trace_path] = opts.inputs.as_slice() else {
        return Err("report needs exactly one trace file, e.g. \
                    'carbon-edge report trace.jsonl'"
            .to_owned());
    };
    let input = std::fs::read_to_string(trace_path).map_err(|e| {
        format!(
            "cannot read {trace_path}: {e}\n\
             hint: record a trace first, e.g. \
             'carbon-edge run --quick --telemetry {trace_path}'"
        )
    })?;
    let runs = parse_jsonl(&input).map_err(|e| {
        format!(
            "{trace_path}: {e}\n\
             hint: the trace looks corrupt or truncated — re-record it \
             with 'carbon-edge run --quick --telemetry {trace_path}'"
        )
    })?;
    if runs.is_empty() {
        return Err(format!(
            "{trace_path}: no run traces found — the file has no slots \
             recorded at all\n\
             hint: record a trace first, e.g. \
             'carbon-edge run --quick --telemetry {trace_path}'"
        ));
    }
    println!("report       : {} run traces from {trace_path}", runs.len());

    let profile_path = opts
        .profile
        .clone()
        .unwrap_or_else(|| profile_sidecar_path(trace_path));
    let mut profile_findings: Vec<String> = Vec::new();
    match std::fs::read_to_string(&profile_path) {
        Ok(text) => {
            let profiles =
                parse_profile_jsonl(&text).map_err(|e| format!("{profile_path}: {e}"))?;
            print_timings(&profile_path, &profiles);
            for (i, run) in profiles.iter().enumerate() {
                for finding in run.validate() {
                    profile_findings.push(format!("profile run {i}: {finding}"));
                }
            }
            for finding in &profile_findings {
                println!("  !! {profile_path}: {finding}");
            }
        }
        // An explicitly requested sidecar that cannot be read is an
        // error; the implicit default is best-effort.
        Err(e) if opts.profile.is_some() => {
            return Err(format!("cannot read {profile_path}: {e}"));
        }
        Err(_) => println!(
            "timings      : no span-profile stream at {profile_path} \
             (runs recorded with --telemetry write one automatically)"
        ),
    }

    // Header-only traces (labels but no events) happen when a run is
    // interrupted before its first slot, or when a serve daemon is
    // checkpointed at slot 0. Diagnose instead of printing a wall of
    // NaN tables.
    if runs.iter().all(|r| r.events().is_empty()) {
        println!(
            "note         : no slots recorded in {trace_path} — the trace has \
             run headers only (an interrupted or slot-0 run); nothing to \
             analyze"
        );
    } else {
        print_run_summaries(&runs);
        print_envelopes(&runs);
        print_fault_summary(&runs);
        print_lambda_trajectories(&runs);
        print_switch_cadence(&runs);
        print_allowance_position(&runs);

        if let Some(dir) = &opts.svg_dir {
            render_svgs(dir, &runs)?;
        }
    }

    // Serve traces carry a `.ops.jsonl` sidecar with the envelope
    // verdicts the daemon streamed while running; cross-check them
    // against the post-run monitors recomputed into the trace itself.
    let ops_path = ops_sidecar_path(trace_path);
    let mut live_disagreements: Vec<String> = Vec::new();
    if let Ok(text) = std::fs::read_to_string(&ops_path) {
        let ops_runs = parse_jsonl(&text).map_err(|e| format!("{ops_path}: {e}"))?;
        print_ingest_summary(&ops_runs);
        live_disagreements = crosscheck_live_envelopes(&runs, &ops_runs);
        println!("\n== live vs post-run envelope verdicts ({ops_path}) ==");
        if live_disagreements.is_empty() {
            println!("(the daemon's streamed verdicts agree with the recomputed monitors)");
        } else {
            for finding in &live_disagreements {
                println!("  !! {finding}");
            }
        }
    }

    // Excused envelope events (breaches attributable to an injected
    // fault schedule) are annotations, not violations: strict mode
    // gates only on the unexcused remainder.
    let violations: u64 = runs
        .iter()
        .map(|r| {
            r.counter("envelope.violations")
                .max(counted_envelope_events(r).len() as u64)
        })
        .sum();
    if opts.strict && violations > 0 {
        return Err(format!(
            "strict mode: {violations} theorem-envelope violation(s) in the trace"
        ));
    }
    if opts.strict && !profile_findings.is_empty() {
        return Err(format!(
            "strict mode: {} structural problem(s) in the span-profile \
             stream at {profile_path}",
            profile_findings.len()
        ));
    }
    if opts.strict && !live_disagreements.is_empty() {
        return Err(format!(
            "strict mode: {} disagreement(s) between the live envelope \
             verdicts in {ops_path} and the recomputed post-run monitors",
            live_disagreements.len()
        ));
    }
    Ok(())
}

/// `"policy seed=K"`, the run identifier used across every section.
fn run_name(rec: &Recorder) -> String {
    let get = |key: &str| {
        rec.labels()
            .iter()
            .find(|(k, _)| k == key)
            .map_or("?", |(_, v)| v.as_str())
    };
    format!("{} seed={}", get("policy"), get("seed"))
}

fn field_f64(event: &Event, name: &str) -> Option<f64> {
    event.fields.iter().find_map(|(k, v)| {
        if k != name {
            return None;
        }
        match v {
            Value::Float(x) => Some(*x),
            Value::Int(x) => Some(*x as f64),
            Value::UInt(x) => Some(*x as f64),
            _ => None,
        }
    })
}

fn field_str<'e>(event: &'e Event, name: &str) -> Option<&'e str> {
    event.fields.iter().find_map(|(k, v)| match v {
        Value::Str(s) if k == name => Some(s.as_str()),
        _ => None,
    })
}

fn envelope_events(rec: &Recorder) -> Vec<&Event> {
    rec.events()
        .iter()
        .filter(|e| e.kind == "envelope")
        .collect()
}

/// Whether an envelope event is a fault-excused annotation (see
/// `cne_core::monitor`): it describes a breach attributable to the
/// injected fault schedule and must not fail `--strict`.
fn is_excused(event: &Event) -> bool {
    event
        .fields
        .iter()
        .any(|(k, v)| k == "excused" && matches!(v, Value::Bool(true)))
}

/// Envelope events that count as violations (excused ones filtered).
fn counted_envelope_events(rec: &Recorder) -> Vec<&Event> {
    envelope_events(rec)
        .into_iter()
        .filter(|e| !is_excused(e))
        .collect()
}

/// `(slot, excused)` verdict multiset for one monitor.
fn verdict_counts(
    events: &[&Event],
    monitor: &str,
) -> std::collections::BTreeMap<(Option<u64>, bool), usize> {
    let mut counts = std::collections::BTreeMap::new();
    for event in events {
        if field_str(event, "monitor") == Some(monitor) {
            *counts.entry((event.slot, is_excused(event))).or_insert(0) += 1;
        }
    }
    counts
}

/// Compares the envelope verdicts a serve daemon streamed while running
/// (`envelope_live` events in the `.ops.jsonl` sidecar) against the
/// post-run monitors' verdicts recorded in the trace itself. The two
/// watch the same theorems from different vantage points, so a
/// disagreement means one of them is wrong. Rules per monitor:
///
/// - `block_boundary`, `trade_bounds`: slot-anchored and excused by the
///   event itself — the `(slot, excused)` multisets must match exactly
///   (restricted to slots the daemon actually served, `serve.start_slot`
///   onward, so resumed runs only answer for their own suffix).
/// - `dual_sanity`: the live check uses the running travel-budget
///   ceiling, the post-run check the (larger) end-of-run ceiling — every
///   post-run breach slot must appear live, but not vice versa.
/// - `thm2_fit`: the live monitor reports the first crossing only and
///   the fit may recede by run end, so a live breach without a terminal
///   one is legitimate; a terminal breach without a live one is not.
///   Skipped for resumed daemons (the crossing may predate the resume).
/// - `thm1_regret` is end-of-run only and has no live counterpart.
fn crosscheck_live_envelopes(runs: &[Recorder], ops_runs: &[Recorder]) -> Vec<String> {
    let mut findings = Vec::new();
    for ops in ops_runs {
        let name = run_name(ops);
        let Some(run) = runs.iter().find(|r| run_name(r) == name) else {
            findings.push(format!(
                "{name}: the ops sidecar has no matching run in the trace"
            ));
            continue;
        };
        let start = ops.gauge_value("serve.start_slot").unwrap_or(0.0) as u64;
        let live: Vec<&Event> = ops
            .events()
            .iter()
            .filter(|e| e.kind == "envelope_live")
            .collect();
        let post: Vec<&Event> = envelope_events(run)
            .into_iter()
            .filter(|e| e.slot.is_none() || e.slot.is_some_and(|t| t >= start))
            .collect();

        for monitor in ["block_boundary", "trade_bounds"] {
            let live_set = verdict_counts(&live, monitor);
            let post_set = verdict_counts(&post, monitor);
            if live_set == post_set {
                continue;
            }
            let describe = |(slot, excused): &(Option<u64>, bool)| {
                format!(
                    "slot {}{}",
                    slot.map_or("—".to_owned(), |t| t.to_string()),
                    if *excused { " (excused)" } else { "" }
                )
            };
            for (key, n) in &post_set {
                if live_set.get(key).copied().unwrap_or(0) < *n {
                    findings.push(format!(
                        "{name}: post-run {monitor} breach at {} was never \
                         streamed live",
                        describe(key)
                    ));
                }
            }
            for (key, n) in &live_set {
                if post_set.get(key).copied().unwrap_or(0) < *n {
                    findings.push(format!(
                        "{name}: live {monitor} breach at {} is absent from \
                         the post-run verdicts",
                        describe(key)
                    ));
                }
            }
        }

        let live_dual = verdict_counts(&live, "dual_sanity");
        for (key, _) in verdict_counts(&post, "dual_sanity") {
            if !live_dual.contains_key(&key) && !live_dual.contains_key(&(key.0, !key.1)) {
                findings.push(format!(
                    "{name}: post-run dual_sanity breach at slot {} was never \
                     streamed live",
                    key.0.map_or("—".to_owned(), |t| t.to_string())
                ));
            }
        }

        let live_fit = live
            .iter()
            .any(|e| field_str(e, "monitor") == Some("thm2_fit"));
        let post_fit = post
            .iter()
            .any(|e| field_str(e, "monitor") == Some("thm2_fit"));
        if post_fit && !live_fit && start == 0 {
            findings.push(format!(
                "{name}: the terminal thm2_fit breach was never streamed live"
            ));
        }
    }
    findings
}

/// Flamegraph-style self/total aggregate over every profiled run,
/// merged by span path in first-seen order.
fn print_timings(path: &str, profiles: &[ProfileRun]) {
    if profiles.is_empty() {
        return;
    }
    let mut order: Vec<String> = Vec::new();
    let mut merged: std::collections::HashMap<String, (u64, f64, f64)> =
        std::collections::HashMap::new();
    for run in profiles {
        for span in &run.spans {
            let entry = merged.entry(span.path.clone()).or_insert_with(|| {
                order.push(span.path.clone());
                (0, 0.0, 0.0)
            });
            entry.0 += span.count;
            entry.1 += span.total_us;
            entry.2 += span.self_us;
        }
    }
    println!(
        "\n== per-stage wall-clock timings ({} profiles from {path}) ==",
        profiles.len()
    );
    println!(
        "{:<34} {:>10} {:>12} {:>12} {:>10}",
        "span", "count", "total ms", "self ms", "mean µs"
    );
    for span_path in &order {
        let (count, total_us, self_us) = merged[span_path];
        let depth = span_path.matches('/').count();
        let name = span_path.rsplit('/').next().unwrap_or(span_path);
        let label = format!("{}{}", "  ".repeat(depth), name);
        let mean = if count > 0 {
            total_us / count as f64
        } else {
            0.0
        };
        println!(
            "{label:<34} {count:>10} {:>12.3} {:>12.3} {mean:>10.1}",
            total_us / 1e3,
            self_us / 1e3,
        );
    }
}

fn print_run_summaries(runs: &[Recorder]) {
    println!("\n== run summaries ==");
    println!(
        "{:<22} {:>12} {:>11} {:>9} {:>7} {:>12}",
        "run", "total cost", "violation", "switches", "trades", "p2 regret ¢"
    );
    for rec in runs {
        let gauge = |name: &str| rec.gauge_value(name).unwrap_or(f64::NAN);
        println!(
            "{:<22} {:>12.1} {:>11.2} {:>9} {:>7} {:>12.1}",
            run_name(rec),
            gauge("total_cost"),
            gauge("violation"),
            rec.counter("switches"),
            rec.counter("trades"),
            gauge("regret.p2"),
        );
    }
}

/// Regret decomposition against the Theorem 1 / Theorem 2 envelopes,
/// plus a listing of every recorded envelope violation.
fn print_envelopes(runs: &[Recorder]) {
    let checked: Vec<&Recorder> = runs
        .iter()
        .filter(|r| {
            r.gauge_value("envelope.thm1_observed").is_some()
                || r.gauge_value("envelope.fit_observed").is_some()
        })
        .collect();
    println!("\n== theorem envelopes ==");
    if checked.is_empty() {
        println!("(no monitored runs in this trace)");
        return;
    }
    println!(
        "{:<22} {:>13} {:>11} {:>11} {:>11} {:>9}",
        "run", "p1+switching", "thm1 bound", "fit", "thm2 bound", "verdict"
    );
    for rec in &checked {
        let fmt = |obs: Option<f64>| obs.map_or("—".to_owned(), |v| format!("{v:.1}"));
        let violations = rec
            .counter("envelope.violations")
            .max(counted_envelope_events(rec).len() as u64);
        let excused = envelope_events(rec).iter().any(|e| is_excused(e));
        let verdict = if violations > 0 {
            "VIOL"
        } else if excused {
            "excused"
        } else {
            "ok"
        };
        println!(
            "{:<22} {:>13} {:>11} {:>11} {:>11} {:>9}",
            run_name(rec),
            fmt(rec.gauge_value("envelope.thm1_observed")),
            fmt(rec.gauge_value("envelope.thm1_bound")),
            fmt(rec.gauge_value("envelope.fit_observed")),
            fmt(rec.gauge_value("envelope.fit_bound")),
            verdict,
        );
    }
    for rec in runs {
        for event in envelope_events(rec) {
            let slot = event.slot.map_or("—".to_owned(), |t| t.to_string());
            let marker = if is_excused(event) { "~~" } else { "!!" };
            let monitor = field_str(event, "monitor").unwrap_or("?");
            let details: Vec<String> = event
                .fields
                .iter()
                .filter(|(k, _)| k != "monitor")
                .map(|(k, v)| match v {
                    Value::Float(x) => format!("{k}={x:.3}"),
                    Value::Int(x) => format!("{k}={x}"),
                    Value::UInt(x) => format!("{k}={x}"),
                    Value::Bool(x) => format!("{k}={x}"),
                    Value::Str(x) => format!("{k}={x}"),
                })
                .collect();
            println!(
                "  {marker} {} slot {slot}: {monitor} {}",
                run_name(rec),
                details.join(" ")
            );
        }
    }
}

/// Fault-injection summary: what the schedule injected, what recovered,
/// and the carry-forward trade position (only for traces recorded with
/// `--faults`).
fn print_fault_summary(runs: &[Recorder]) {
    let faulted: Vec<&Recorder> = runs
        .iter()
        .filter(|r| {
            r.counter("faults.injected") > 0
                || r.labels().iter().any(|(k, _)| k == "fault_scenario")
        })
        .collect();
    if faulted.is_empty() {
        return;
    }
    println!("\n== fault injection & recovery ==");
    println!(
        "{:<22} {:>10} {:>8} {:>8} {:>8} {:>7} {:>7} {:>7} {:>9} {:>10}",
        "run",
        "scenario",
        "outage",
        "surge",
        "dl-fail",
        "fb-loss",
        "halt",
        "reject",
        "recovered",
        "unmet z/w"
    );
    for rec in &faulted {
        let scenario = rec
            .labels()
            .iter()
            .find(|(k, _)| k == "fault_scenario")
            .map_or("?", |(_, v)| v.as_str());
        let unmet = format!(
            "{:.1}/{:.1}",
            rec.gauge_value("faults.unmet_buy").unwrap_or(0.0),
            rec.gauge_value("faults.unmet_sell").unwrap_or(0.0)
        );
        println!(
            "{:<22} {:>10} {:>8} {:>8} {:>8} {:>7} {:>7} {:>7} {:>9} {:>10}",
            run_name(rec),
            scenario,
            rec.counter("faults.edge_outage"),
            rec.counter("faults.surge"),
            rec.counter("faults.download_failure"),
            rec.counter("faults.feedback_loss"),
            rec.counter("faults.market_halt"),
            rec.counter("faults.order_rejected"),
            rec.counter("faults.recoveries"),
            unmet,
        );
    }
    // Recovery events, per class: how long degradation actually lasted.
    for rec in &faulted {
        let recoveries: Vec<&Event> = rec
            .events()
            .iter()
            .filter(|e| e.kind == "recovery")
            .collect();
        if recoveries.is_empty() {
            continue;
        }
        let total: f64 = recoveries
            .iter()
            .filter_map(|e| field_f64(e, "delayed_slots").or_else(|| field_f64(e, "attempts")))
            .sum();
        println!(
            "  {} recovered {} times ({} slots of degraded service/backoff total)",
            run_name(rec),
            recoveries.len(),
            total
        );
    }
}

/// Prints the wire-ingest side of the serve daemon's ops sidecar:
/// per-run request/byte/bad-line totals plus one row per `bad_line`
/// event with the absolute stream byte offset and truncated snippet,
/// so an offending line can be located in a multi-GB stream. Skipped
/// entirely for runs that never served a wire stream.
fn print_ingest_summary(runs: &[Recorder]) {
    let served: Vec<&Recorder> = runs
        .iter()
        .filter(|r| r.counter("serve.requests") > 0 || r.counter("serve.ingest.bytes") > 0)
        .collect();
    if served.is_empty() {
        return;
    }
    println!("\n== wire ingest ==");
    println!(
        "{:<22} {:>12} {:>14} {:>10}",
        "run", "requests", "bytes in", "bad lines"
    );
    for rec in &served {
        println!(
            "{:<22} {:>12} {:>14} {:>10}",
            run_name(rec),
            rec.counter("serve.requests"),
            rec.counter("serve.ingest.bytes"),
            rec.counter("serve.bad_lines"),
        );
    }
    for rec in &served {
        let bad: Vec<&Event> = rec
            .events()
            .iter()
            .filter(|e| e.kind == "bad_line")
            .collect();
        if bad.is_empty() {
            continue;
        }
        const MAX_ROWS: usize = 16;
        println!("  {} rejected lines:", run_name(rec));
        println!("    {:>12} {:<38} snippet", "offset", "reason");
        for e in bad.iter().take(MAX_ROWS) {
            let offset = field_f64(e, "offset").unwrap_or(-1.0);
            let reason = field_str(e, "reason").unwrap_or("?");
            let snippet = field_str(e, "snippet").unwrap_or("");
            println!("    {:>12.0} {:<38} {:?}", offset, reason, snippet);
        }
        if bad.len() > MAX_ROWS {
            println!("    … and {} more", bad.len() - MAX_ROWS);
        }
    }
}

/// Down-samples `values` into at most `width` buckets and renders them
/// with eight-level block characters. Shared with `carbon-edge watch`.
pub(crate) fn sparkline(values: &[f64], width: usize) -> String {
    if values.is_empty() {
        return String::new();
    }
    let chunk = values.len().div_ceil(width);
    let compressed: Vec<f64> = values
        .chunks(chunk)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect();
    let lo = compressed.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = compressed.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    compressed
        .iter()
        .map(|&v| {
            if !(hi - lo).is_normal() {
                return SPARKS[3];
            }
            let idx = ((v - lo) / (hi - lo) * 7.0).round() as usize;
            SPARKS[idx.min(7)]
        })
        .collect()
}

fn lambda_trajectory(rec: &Recorder) -> Vec<(u64, f64)> {
    rec.events()
        .iter()
        .filter(|e| e.kind == "lambda")
        .filter_map(|e| Some((e.slot?, field_f64(e, "value")?)))
        .collect()
}

fn print_lambda_trajectories(runs: &[Recorder]) {
    let traced: Vec<(&Recorder, Vec<(u64, f64)>)> = runs
        .iter()
        .filter_map(|r| {
            let traj = lambda_trajectory(r);
            (!traj.is_empty()).then_some((r, traj))
        })
        .collect();
    if traced.is_empty() {
        return;
    }
    println!("\n== dual variable λ (primal–dual runs) ==");
    for (rec, traj) in traced {
        let values: Vec<f64> = traj.iter().map(|&(_, v)| v).collect();
        let peak = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // Guarded even though the filter above excludes empty
        // trajectories: a trace is user-supplied input, and a panic in
        // `report` should never be reachable from a crafted file.
        let last = values.last().copied().unwrap_or(f64::NAN);
        println!(
            "{:<22} {}  final λ={last:.2} peak λ={peak:.2}",
            run_name(rec),
            sparkline(&values, 60)
        );
    }
}

/// Switch counts against the Theorem 1 block-schedule budget: a
/// download can only happen at a block boundary, so `Σ_i blocks_i` is
/// the hard ceiling on downloads for Algorithm 1 runs.
fn print_switch_cadence(runs: &[Recorder]) {
    let mut printed_header = false;
    for rec in runs {
        let mut budget = 0.0;
        let mut edges = 0;
        while let Some(blocks) = rec.gauge_value(&format!("selector.edge{edges}.blocks")) {
            budget += blocks;
            edges += 1;
        }
        if edges == 0 {
            continue;
        }
        if !printed_header {
            println!("\n== switch cadence vs the Theorem 1 block schedule ==");
            println!(
                "{:<22} {:>9} {:>15} {:>8}",
                "run", "switches", "schedule budget", "status"
            );
            printed_header = true;
        }
        let switches = rec.counter("switches");
        let status = if (switches as f64) <= budget {
            "ok"
        } else {
            "OVER"
        };
        println!(
            "{:<22} {switches:>9} {:>15} {status:>8}",
            run_name(rec),
            format!("{budget:.0} ({edges} edges)"),
        );
    }
}

fn print_allowance_position(runs: &[Recorder]) {
    println!("\n== emissions vs allowance position ==");
    println!(
        "{:<22} {:>8} {:>10} {:>8} {:>8} {:>10} {:>12} {:>12}",
        "run", "cap", "emissions", "bought", "sold", "headroom", "trade cash ¢", "settlement ¢"
    );
    for rec in runs {
        let gauge = |name: &str| rec.gauge_value(name).unwrap_or(f64::NAN);
        let headroom = gauge("cap") + gauge("allowances.bought")
            - gauge("allowances.sold")
            - gauge("emissions");
        println!(
            "{:<22} {:>8.1} {:>10.1} {:>8.1} {:>8.1} {:>10.1} {:>12.1} {:>12.1}",
            run_name(rec),
            gauge("cap"),
            gauge("emissions"),
            gauge("allowances.bought"),
            gauge("allowances.sold"),
            headroom,
            gauge("trade_cash"),
            gauge("settlement_cost"),
        );
    }
}

/// Renders the λ trajectories as an SVG line chart under `dir`.
fn render_svgs(dir: &str, runs: &[Recorder]) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    let mut chart = LineChart::new("Dual variable trajectory", "slot t", "λ");
    for rec in runs {
        let traj = lambda_trajectory(rec);
        if traj.is_empty() {
            continue;
        }
        chart.add_series(Series {
            name: run_name(rec),
            points: traj.iter().map(|&(t, v)| (t as f64, v)).collect(),
        });
    }
    if chart.num_series() == 0 {
        println!("svg          : no λ trajectories to chart");
        return Ok(());
    }
    let path = format!("{dir}/lambda.svg");
    std::fs::write(&path, chart.to_svg()).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("svg          : λ trajectories written to {path}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_spans_the_levels() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0], 8);
        assert_eq!(s.chars().count(), 8);
        assert!(s.starts_with('▁') && s.ends_with('█'));
        assert_eq!(sparkline(&[2.0, 2.0, 2.0], 8), "▄▄▄", "flat series");
        assert_eq!(sparkline(&[], 8), "");
    }

    #[test]
    fn sparkline_downsamples_to_width() {
        let values: Vec<f64> = (0..240).map(f64::from).collect();
        assert_eq!(sparkline(&values, 60).chars().count(), 60);
    }

    #[test]
    fn report_rejects_missing_and_malformed_traces() {
        let mut opts = Options {
            inputs: vec!["/nonexistent/trace.jsonl".to_owned()],
            ..Options::default()
        };
        assert!(report(&opts).is_err(), "missing file is an error");

        let dir = std::env::temp_dir().join("cne-report-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let bad = dir.join("bad.jsonl");
        std::fs::write(&bad, "{\"type\":\"run\"}\nnot json\n").expect("write");
        opts.inputs = vec![bad.to_string_lossy().into_owned()];
        let err = report(&opts).expect_err("malformed trace is an error");
        assert!(err.contains("line 2"), "error names the line: {err}");
    }

    /// A minimal well-formed single-run trace for sidecar tests.
    fn write_ok_trace(dir: &std::path::Path, name: &str) -> String {
        let trace = dir.join(name);
        let mut rec = Recorder::new();
        rec.set_label("policy", "ours");
        rec.set_label("seed", "1");
        let path = trace.to_string_lossy().into_owned();
        std::fs::write(&trace, rec.to_jsonl_string()).expect("write trace");
        path
    }

    #[test]
    fn empty_and_header_only_traces_are_diagnosed() {
        let dir = std::env::temp_dir().join("cne-report-empty-test");
        std::fs::create_dir_all(&dir).expect("temp dir");

        // A truly empty file: a friendly hard error, not a panic.
        let empty = dir.join("empty.jsonl");
        std::fs::write(&empty, "").expect("write");
        let mut opts = Options {
            inputs: vec![empty.to_string_lossy().into_owned()],
            ..Options::default()
        };
        let err = report(&opts).expect_err("empty trace is an error");
        assert!(err.contains("no slots"), "names the problem: {err}");
        assert!(err.contains("hint"), "suggests a fix: {err}");

        // A header-only trace (run labels, zero slot events): a
        // friendly note, exit 0.
        let header_only = write_ok_trace(&dir, "header-only.jsonl");
        opts.inputs = vec![header_only];
        report(&opts).expect("header-only trace is diagnosed, not fatal");
    }

    #[test]
    fn explicit_profile_path_must_be_readable() {
        let dir = std::env::temp_dir().join("cne-report-profile-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let trace = write_ok_trace(&dir, "ok.jsonl");

        // Implicit sidecar missing: best-effort, still succeeds.
        let mut opts = Options {
            inputs: vec![trace.clone()],
            ..Options::default()
        };
        report(&opts).expect("missing implicit sidecar is fine");

        // Explicit --profile pointing nowhere: hard error.
        opts.profile = Some("/nonexistent/run.profile.jsonl".to_owned());
        let err = report(&opts).expect_err("explicit sidecar must exist");
        assert!(err.contains("cannot read"), "got: {err}");
    }

    /// A trace recorder and an ops recorder for the same run, each
    /// carrying the given `(slot, monitor, excused)` verdicts as
    /// post-run `envelope` / live `envelope_live` events.
    fn verdict_pair(
        post: &[(Option<u64>, &str, bool)],
        live: &[(Option<u64>, &str, bool)],
    ) -> (Recorder, Recorder) {
        let mut run = Recorder::new();
        run.set_label("policy", "ours");
        run.set_label("seed", "1");
        for &(slot, monitor, excused) in post {
            run.event(
                slot,
                "envelope",
                &[("monitor", monitor.into()), ("excused", excused.into())],
            );
        }
        let mut ops = Recorder::new();
        ops.set_label("policy", "ours");
        ops.set_label("seed", "1");
        ops.set_label("stream", "ops");
        ops.gauge("serve.start_slot", 0.0);
        for &(slot, monitor, excused) in live {
            ops.event(
                slot,
                "envelope_live",
                &[("monitor", monitor.into()), ("excused", excused.into())],
            );
        }
        (run, ops)
    }

    #[test]
    fn live_crosscheck_accepts_agreeing_verdicts() {
        // Exact match on the slot-anchored monitors; a live-only
        // dual_sanity breach (tighter running ceiling) and a live-only
        // thm2_fit crossing (the fit receded by run end) are both fine.
        let (run, ops) = verdict_pair(
            &[
                (Some(3), "block_boundary", true),
                (Some(7), "trade_bounds", false),
            ],
            &[
                (Some(3), "block_boundary", true),
                (Some(7), "trade_bounds", false),
                (Some(5), "dual_sanity", false),
                (Some(6), "thm2_fit", false),
            ],
        );
        assert_eq!(
            crosscheck_live_envelopes(&[run], &[ops]),
            Vec::<String>::new()
        );
    }

    #[test]
    fn live_crosscheck_flags_every_disagreement_direction() {
        let (run, ops) = verdict_pair(
            &[
                // Post-run breach the daemon never streamed.
                (Some(3), "block_boundary", false),
                // Post-run dual breach with no live counterpart.
                (Some(4), "dual_sanity", false),
                // Terminal fit breach with no live crossing.
                (None, "thm2_fit", false),
            ],
            &[
                // Live breach the post-run monitors never confirmed.
                (Some(9), "trade_bounds", false),
            ],
        );
        let findings = crosscheck_live_envelopes(&[run], &[ops]);
        assert_eq!(findings.len(), 4, "all four disagree: {findings:?}");
        assert!(findings.iter().any(|f| f.contains("block_boundary")));
        assert!(findings
            .iter()
            .any(|f| f.contains("trade_bounds") && f.contains("absent")));
        assert!(findings.iter().any(|f| f.contains("dual_sanity")));
        assert!(findings.iter().any(|f| f.contains("thm2_fit")));
    }

    #[test]
    fn live_crosscheck_respects_the_resume_boundary() {
        // A daemon resumed at slot 10 never saw slot 3's breach or the
        // original fit crossing; only its own suffix counts.
        let (run, mut ops) = verdict_pair(
            &[
                (Some(3), "block_boundary", false),
                (None, "thm2_fit", false),
            ],
            &[],
        );
        ops.gauge("serve.start_slot", 10.0);
        assert_eq!(
            crosscheck_live_envelopes(&[run], &[ops]),
            Vec::<String>::new()
        );
    }

    #[test]
    fn strict_mode_fails_on_live_verdict_disagreement() {
        let dir = std::env::temp_dir().join("cne-report-live-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let (run, ops) = verdict_pair(&[(Some(3), "block_boundary", true)], &[]);
        let trace = dir.join("served.jsonl");
        let trace_path = trace.to_string_lossy().into_owned();
        std::fs::write(&trace, run.to_jsonl_string()).expect("write trace");
        std::fs::write(ops_sidecar_path(&trace_path), ops.to_jsonl_string())
            .expect("write sidecar");
        let mut opts = Options {
            inputs: vec![trace_path],
            ..Options::default()
        };
        report(&opts).expect("non-strict mode only warns");
        opts.strict = true;
        let err = report(&opts).expect_err("strict mode fails on disagreement");
        assert!(err.contains("disagreement"), "got: {err}");
    }

    #[test]
    fn strict_mode_rejects_invalid_profile_sidecars() {
        let dir = std::env::temp_dir().join("cne-report-strict-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let trace = write_ok_trace(&dir, "ok.jsonl");

        // A structurally broken profile: self time exceeds total time.
        let prof = dir.join("bad.profile.jsonl");
        std::fs::write(
            &prof,
            "{\"type\":\"profile\",\"policy\":\"ours\"}\n\
             {\"type\":\"span\",\"path\":\"run\",\"count\":1,\
             \"total_us\":1.0,\"self_us\":5.0}\n",
        )
        .expect("write profile");
        let mut opts = Options {
            inputs: vec![trace],
            profile: Some(prof.to_string_lossy().into_owned()),
            ..Options::default()
        };
        report(&opts).expect("non-strict mode only warns");
        opts.strict = true;
        let err = report(&opts).expect_err("strict mode fails on findings");
        assert!(err.contains("structural problem"), "got: {err}");
    }
}
