//! Minimal flag parsing (no third-party dependency).

use cne_core::wal::SyncPolicy;
use cne_core::wire::WireDecode;
use cne_simdata::dataset::TaskKind;

/// Default cap on one wire line (64 KiB) — far above any legitimate
/// request line, far below what a hostile client would need to exhaust
/// memory.
pub const DEFAULT_MAX_LINE_BYTES: usize = 64 * 1024;

/// Default `--max-bad-lines` error budget.
pub const DEFAULT_MAX_BAD_LINES: u64 = 100;

/// Parsed command-line options shared by all subcommands.
#[derive(Debug, Clone)]
pub struct Options {
    /// Inference task.
    pub task: TaskKind,
    /// Number of edges `I`.
    pub edges: usize,
    /// Number of averaged seeds.
    pub seeds: u64,
    /// Policy name (for `run`).
    pub policy: String,
    /// Use the reduced fast-test configuration and zoo.
    pub quick: bool,
    /// Extend the zoo with 8-bit quantized variants.
    pub quantized: bool,
    /// Optional output TSV path for per-slot series.
    pub out: Option<String>,
    /// Worker threads for the multi-seed driver (`None` defers to
    /// `CARBON_EDGE_THREADS`, then to the machine's parallelism).
    pub threads: Option<usize>,
    /// Edge-shard workers inside each run's serve/select loop (`None`
    /// defers to `CARBON_EDGE_EDGE_THREADS`, then to 1). Results are
    /// bit-identical at every count.
    pub edge_threads: Option<usize>,
    /// Batch window for the edge workers' epoch-gate handshake (`None`
    /// defers to `CARBON_EDGE_GATE_BATCH`, then to the simulator's
    /// default). A pure scheduling knob — results are bit-identical at
    /// every window size.
    pub gate_batch: Option<usize>,
    /// Optional JSONL path for per-run telemetry traces.
    pub telemetry: Option<String>,
    /// Optional JSONL path for the wall-clock span-profile stream
    /// (defaults to `<telemetry>.profile.jsonl` when `--telemetry` is
    /// set).
    pub profile: Option<String>,
    /// `report`: exit non-zero when the trace contains theorem-envelope
    /// violations.
    pub strict: bool,
    /// `report`: also render SVG charts into this directory.
    pub svg_dir: Option<String>,
    /// `bench-check`: relative tolerance for gated wall-clock entries.
    pub tolerance: f64,
    /// `run`: serve request streams through the legacy per-request
    /// path instead of batched sufficient statistics (bit-identical;
    /// for equivalence debugging).
    pub serve_per_request: bool,
    /// `run`/`compare`: path to a fault-scenario JSON file (see
    /// `cne_faults::FaultScenario`); `None` keeps the paper's
    /// fault-free setting.
    pub faults: Option<String>,
    /// `serve`/`gen-arrivals`: the single run seed (the batch driver's
    /// `--seeds K` averages seeds `1..=K`; a daemon serves exactly
    /// one).
    pub seed: u64,
    /// `serve`: write checkpoints to this path.
    pub checkpoint: Option<String>,
    /// `serve`: rewrite the checkpoint after every N served slots.
    pub checkpoint_every: Option<usize>,
    /// `serve`: resume from a checkpoint file instead of starting
    /// fresh.
    pub resume: Option<String>,
    /// `serve`: append every arrival to a write-ahead log in this
    /// directory, and replay its tail on `--resume`.
    pub wal: Option<String>,
    /// `serve`: WAL fsync policy (`every` | `slot` | `off`).
    pub wal_sync: SyncPolicy,
    /// `serve`: reject wire lines longer than this many bytes.
    pub max_line_bytes: usize,
    /// `serve`: wire decoder pipeline (`fast` | `strict`). `strict`
    /// disables the zero-alloc fast path, for decoder cross-checks.
    pub wire_decode: WireDecode,
    /// `serve`: exit with an error after this many rejected wire
    /// lines (malformed lines are counted and skipped, not fatal).
    pub max_bad_lines: u64,
    /// `serve`: stop after slot K is served — write the checkpoint and
    /// exit cleanly (for drills and CI).
    pub halt_at_slot: Option<usize>,
    /// `serve`: close the open slot after N request lines.
    pub slot_requests: Option<usize>,
    /// `serve`: close the open slot after M wall-clock milliseconds.
    pub slot_ms: Option<u64>,
    /// `serve`: listen on `unix:PATH` or `tcp:ADDR` instead of stdin.
    pub listen: Option<String>,
    /// `serve`: expose `/metrics`, `/healthz`, `/readyz` on `unix:PATH`
    /// or `tcp:HOST:PORT`; `watch`: the endpoint to scrape.
    pub admin: Option<String>,
    /// `serve`: `/readyz` turns 503 when no slot closes within this
    /// many milliseconds (the run being complete always reads ready).
    pub ready_deadline_ms: u64,
    /// `watch`: milliseconds between dashboard refreshes.
    pub interval_ms: u64,
    /// `watch`: stop after N refreshes (default: run until killed).
    pub iterations: Option<u64>,
    /// `gen-arrivals`: arrival-process name (diurnal | bursty |
    /// heavy-tail).
    pub process: String,
    /// `gen-arrivals`: first slot to emit (resume tails regenerate
    /// exactly the suffix a full generation would produce).
    pub start_slot: usize,
    /// `serve`/`gen-arrivals`: slot-count override (`serve`: horizon;
    /// `gen-arrivals`: slots to emit).
    pub slots: Option<usize>,
    /// `gen-arrivals`: expected busiest-edge slot count at the diurnal
    /// peak.
    pub peak: Option<f64>,
    /// Positional arguments (e.g. the trace file for `report`).
    pub inputs: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            task: TaskKind::MnistLike,
            edges: 10,
            seeds: 3,
            policy: "ours".to_owned(),
            quick: false,
            quantized: false,
            out: None,
            threads: None,
            edge_threads: None,
            gate_batch: None,
            telemetry: None,
            profile: None,
            strict: false,
            svg_dir: None,
            tolerance: 0.25,
            serve_per_request: false,
            faults: None,
            seed: 1,
            checkpoint: None,
            checkpoint_every: None,
            resume: None,
            wal: None,
            wal_sync: SyncPolicy::Slot,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            wire_decode: WireDecode::default(),
            max_bad_lines: DEFAULT_MAX_BAD_LINES,
            halt_at_slot: None,
            slot_requests: None,
            slot_ms: None,
            listen: None,
            admin: None,
            ready_deadline_ms: 5000,
            interval_ms: 1000,
            iterations: None,
            process: "diurnal".to_owned(),
            start_slot: 0,
            slots: None,
            peak: None,
            inputs: Vec::new(),
        }
    }
}

impl Options {
    /// Parses `--flag value` pairs and boolean switches.
    ///
    /// # Errors
    /// Returns a message for unknown flags, missing values, or values
    /// that fail to parse.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = Options::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("flag {name} needs a value"))
            };
            match flag.as_str() {
                "--task" => {
                    opts.task = match value("--task")?.to_ascii_lowercase().as_str() {
                        "mnist" | "mnist-like" => TaskKind::MnistLike,
                        "cifar" | "cifar-like" | "cifar10" => TaskKind::CifarLike,
                        other => return Err(format!("unknown task '{other}'")),
                    };
                }
                "--edges" => {
                    opts.edges = value("--edges")?
                        .parse()
                        .map_err(|_| "edges must be a positive integer".to_owned())?;
                    if opts.edges == 0 {
                        return Err("edges must be at least 1".to_owned());
                    }
                }
                "--seeds" => {
                    opts.seeds = value("--seeds")?
                        .parse()
                        .map_err(|_| "seeds must be a positive integer".to_owned())?;
                    if opts.seeds == 0 {
                        return Err("seeds must be at least 1".to_owned());
                    }
                }
                "--policy" => opts.policy = value("--policy")?,
                "--out" => opts.out = Some(value("--out")?),
                "--threads" => {
                    let n: usize = value("--threads")?
                        .parse()
                        .map_err(|_| "threads must be a positive integer".to_owned())?;
                    if n == 0 {
                        return Err("threads must be at least 1".to_owned());
                    }
                    opts.threads = Some(n);
                }
                "--edge-threads" => {
                    let n: usize = value("--edge-threads")?
                        .parse()
                        .map_err(|_| "edge-threads must be a positive integer".to_owned())?;
                    if n == 0 {
                        return Err("edge-threads must be at least 1".to_owned());
                    }
                    opts.edge_threads = Some(n);
                }
                "--gate-batch" => {
                    let n: usize = value("--gate-batch")?
                        .parse()
                        .map_err(|_| "gate-batch must be a positive integer".to_owned())?;
                    if n == 0 {
                        return Err("gate-batch must be at least 1".to_owned());
                    }
                    opts.gate_batch = Some(n);
                }
                "--telemetry" => opts.telemetry = Some(value("--telemetry")?),
                "--profile" => opts.profile = Some(value("--profile")?),
                "--svg-dir" => opts.svg_dir = Some(value("--svg-dir")?),
                "--tolerance" => {
                    let t: f64 = value("--tolerance")?
                        .parse()
                        .map_err(|_| "tolerance must be a number".to_owned())?;
                    if !t.is_finite() || t < 0.0 {
                        return Err("tolerance must be non-negative".to_owned());
                    }
                    opts.tolerance = t;
                }
                "--serve-per-request" => opts.serve_per_request = true,
                "--faults" => opts.faults = Some(value("--faults")?),
                "--seed" => {
                    opts.seed = value("--seed")?
                        .parse()
                        .map_err(|_| "seed must be a non-negative integer".to_owned())?;
                }
                "--checkpoint" => opts.checkpoint = Some(value("--checkpoint")?),
                "--checkpoint-every" => {
                    let n: usize = value("--checkpoint-every")?
                        .parse()
                        .map_err(|_| "checkpoint-every must be a positive integer".to_owned())?;
                    if n == 0 {
                        return Err("checkpoint-every must be at least 1".to_owned());
                    }
                    opts.checkpoint_every = Some(n);
                }
                "--resume" => opts.resume = Some(value("--resume")?),
                "--wal" => opts.wal = Some(value("--wal")?),
                "--wal-sync" => opts.wal_sync = value("--wal-sync")?.parse()?,
                "--max-line-bytes" => {
                    let n: usize = value("--max-line-bytes")?
                        .parse()
                        .map_err(|_| "max-line-bytes must be a positive integer".to_owned())?;
                    if n < 64 {
                        return Err("max-line-bytes must be at least 64 (a minimal \
                                    request line must fit)"
                            .to_owned());
                    }
                    opts.max_line_bytes = n;
                }
                "--wire-decode" => opts.wire_decode = value("--wire-decode")?.parse()?,
                "--max-bad-lines" => {
                    opts.max_bad_lines = value("--max-bad-lines")?
                        .parse()
                        .map_err(|_| "max-bad-lines must be a non-negative integer".to_owned())?;
                }
                "--halt-at-slot" => {
                    let k: usize = value("--halt-at-slot")?
                        .parse()
                        .map_err(|_| "halt-at-slot must be a positive integer".to_owned())?;
                    if k == 0 {
                        return Err("halt-at-slot must be at least 1 (slot 0 \
                                    has not been served yet)"
                            .to_owned());
                    }
                    opts.halt_at_slot = Some(k);
                }
                "--slot-requests" => {
                    let n: usize = value("--slot-requests")?
                        .parse()
                        .map_err(|_| "slot-requests must be a positive integer".to_owned())?;
                    if n == 0 {
                        return Err("slot-requests must be at least 1".to_owned());
                    }
                    opts.slot_requests = Some(n);
                }
                "--slot-ms" => {
                    let ms: u64 = value("--slot-ms")?
                        .parse()
                        .map_err(|_| "slot-ms must be a positive integer".to_owned())?;
                    if ms == 0 {
                        return Err("slot-ms must be at least 1".to_owned());
                    }
                    opts.slot_ms = Some(ms);
                }
                "--listen" => opts.listen = Some(value("--listen")?),
                "--admin" => opts.admin = Some(value("--admin")?),
                "--ready-deadline-ms" => {
                    let ms: u64 = value("--ready-deadline-ms")?
                        .parse()
                        .map_err(|_| "ready-deadline-ms must be a positive integer".to_owned())?;
                    if ms == 0 {
                        return Err("ready-deadline-ms must be at least 1".to_owned());
                    }
                    opts.ready_deadline_ms = ms;
                }
                "--interval-ms" => {
                    let ms: u64 = value("--interval-ms")?
                        .parse()
                        .map_err(|_| "interval-ms must be a positive integer".to_owned())?;
                    if ms == 0 {
                        return Err("interval-ms must be at least 1".to_owned());
                    }
                    opts.interval_ms = ms;
                }
                "--iterations" => {
                    let n: u64 = value("--iterations")?
                        .parse()
                        .map_err(|_| "iterations must be a positive integer".to_owned())?;
                    if n == 0 {
                        return Err("iterations must be at least 1".to_owned());
                    }
                    opts.iterations = Some(n);
                }
                "--process" => opts.process = value("--process")?,
                "--start-slot" => {
                    opts.start_slot = value("--start-slot")?
                        .parse()
                        .map_err(|_| "start-slot must be a non-negative integer".to_owned())?;
                }
                "--slots" => {
                    let n: usize = value("--slots")?
                        .parse()
                        .map_err(|_| "slots must be a positive integer".to_owned())?;
                    if n == 0 {
                        return Err("slots must be at least 1".to_owned());
                    }
                    opts.slots = Some(n);
                }
                "--peak" => {
                    let p: f64 = value("--peak")?
                        .parse()
                        .map_err(|_| "peak must be a number".to_owned())?;
                    if !p.is_finite() || p <= 0.0 {
                        return Err("peak must be positive and finite".to_owned());
                    }
                    opts.peak = Some(p);
                }
                "--strict" => opts.strict = true,
                "--quick" => opts.quick = true,
                "--quantized" => opts.quantized = true,
                other if !other.starts_with('-') => opts.inputs.push(other.to_owned()),
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        Ok(opts)
    }

    /// The seed list `1..=seeds`.
    #[must_use]
    pub fn seed_list(&self) -> Vec<u64> {
        (1..=self.seeds).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        Options::parse(&owned)
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).expect("empty is fine");
        assert_eq!(o.edges, 10);
        assert_eq!(o.task, TaskKind::MnistLike);
        assert!(!o.quick);
    }

    #[test]
    fn full_flag_set() {
        let o = parse(&[
            "--task",
            "cifar",
            "--edges",
            "20",
            "--seeds",
            "7",
            "--policy",
            "ucb-ly",
            "--quick",
            "--quantized",
            "--out",
            "x.tsv",
        ])
        .expect("valid");
        assert_eq!(o.task, TaskKind::CifarLike);
        assert_eq!(o.edges, 20);
        assert_eq!(o.seed_list(), vec![1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(o.policy, "ucb-ly");
        assert!(o.quick && o.quantized);
        assert_eq!(o.out.as_deref(), Some("x.tsv"));
    }

    #[test]
    fn threads_and_telemetry() {
        let o = parse(&["--threads", "4", "--telemetry", "trace.jsonl"]).expect("valid");
        assert_eq!(o.threads, Some(4));
        assert_eq!(o.telemetry.as_deref(), Some("trace.jsonl"));
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--threads", "four"]).is_err());
    }

    #[test]
    fn edge_threads_flag() {
        let o = parse(&["--edge-threads", "4"]).expect("valid");
        assert_eq!(o.edge_threads, Some(4));
        assert!(parse(&[]).expect("defaults").edge_threads.is_none());
        assert!(parse(&["--edge-threads", "0"]).is_err());
        assert!(parse(&["--edge-threads", "many"]).is_err());
        assert!(parse(&["--edge-threads"]).is_err());
    }

    #[test]
    fn gate_batch_flag() {
        let o = parse(&["--gate-batch", "16"]).expect("valid");
        assert_eq!(o.gate_batch, Some(16));
        assert!(parse(&[]).expect("defaults").gate_batch.is_none());
        assert!(parse(&["--gate-batch", "0"]).is_err());
        assert!(parse(&["--gate-batch", "window"]).is_err());
        assert!(parse(&["--gate-batch"]).is_err());
    }

    #[test]
    fn rejects_unknown_flag() {
        assert!(parse(&["--nope"]).is_err());
    }

    #[test]
    fn report_flags_and_positional_inputs() {
        let o = parse(&[
            "trace.jsonl",
            "--strict",
            "--profile",
            "prof.jsonl",
            "--svg-dir",
            "charts",
        ])
        .expect("valid");
        assert_eq!(o.inputs, vec!["trace.jsonl".to_owned()]);
        assert!(o.strict);
        assert_eq!(o.profile.as_deref(), Some("prof.jsonl"));
        assert_eq!(o.svg_dir.as_deref(), Some("charts"));
    }

    #[test]
    fn rejects_missing_value() {
        assert!(parse(&["--edges"]).is_err());
        assert!(parse(&["--edges", "zero"]).is_err());
        assert!(parse(&["--edges", "0"]).is_err());
    }

    #[test]
    fn faults_flag_takes_a_path() {
        let o = parse(&["--faults", "scenarios/ci_smoke.json"]).expect("valid");
        assert_eq!(o.faults.as_deref(), Some("scenarios/ci_smoke.json"));
        assert!(parse(&[]).expect("defaults").faults.is_none());
        assert!(parse(&["--faults"]).is_err());
    }

    #[test]
    fn serve_flags() {
        let o = parse(&[
            "--seed",
            "7",
            "--checkpoint",
            "state.ckpt",
            "--checkpoint-every",
            "5",
            "--resume",
            "old.ckpt",
            "--halt-at-slot",
            "12",
            "--slot-requests",
            "64",
            "--slot-ms",
            "250",
            "--listen",
            "unix:/tmp/serve.sock",
        ])
        .expect("valid");
        assert_eq!(o.seed, 7);
        assert_eq!(o.checkpoint.as_deref(), Some("state.ckpt"));
        assert_eq!(o.checkpoint_every, Some(5));
        assert_eq!(o.resume.as_deref(), Some("old.ckpt"));
        assert_eq!(o.halt_at_slot, Some(12));
        assert_eq!(o.slot_requests, Some(64));
        assert_eq!(o.slot_ms, Some(250));
        assert_eq!(o.listen.as_deref(), Some("unix:/tmp/serve.sock"));

        let d = parse(&[]).expect("defaults");
        assert_eq!(d.seed, 1);
        assert!(d.checkpoint.is_none() && d.resume.is_none());
        assert!(d.checkpoint_every.is_none() && d.halt_at_slot.is_none());
        assert!(d.slot_requests.is_none() && d.slot_ms.is_none());
        assert!(d.listen.is_none());

        assert!(parse(&["--checkpoint-every", "0"]).is_err());
        assert!(parse(&["--halt-at-slot", "0"]).is_err());
        assert!(parse(&["--slot-requests", "0"]).is_err());
        assert!(parse(&["--slot-ms", "0"]).is_err());
        assert!(parse(&["--seed", "minus-one"]).is_err());
    }

    #[test]
    fn wal_and_ingest_hardening_flags() {
        let o = parse(&[
            "--wal",
            "state.wal",
            "--wal-sync",
            "every",
            "--max-line-bytes",
            "4096",
            "--max-bad-lines",
            "0",
        ])
        .expect("valid");
        assert_eq!(o.wal.as_deref(), Some("state.wal"));
        assert_eq!(o.wal_sync, SyncPolicy::Every);
        assert_eq!(o.max_line_bytes, 4096);
        assert_eq!(o.max_bad_lines, 0);

        let d = parse(&[]).expect("defaults");
        assert!(d.wal.is_none());
        assert_eq!(d.wal_sync, SyncPolicy::Slot);
        assert_eq!(d.max_line_bytes, DEFAULT_MAX_LINE_BYTES);
        assert_eq!(d.max_bad_lines, DEFAULT_MAX_BAD_LINES);
        assert_eq!(d.wire_decode, WireDecode::Fast, "fast path is the default");

        let o = parse(&["--wire-decode", "strict"]).expect("valid");
        assert_eq!(o.wire_decode, WireDecode::Strict);
        assert!(parse(&["--wire-decode", "loose"]).is_err());

        assert!(parse(&["--wal-sync", "sometimes"]).is_err());
        assert!(
            parse(&["--max-line-bytes", "12"]).is_err(),
            "below the floor"
        );
        assert!(parse(&["--max-line-bytes", "big"]).is_err());
        assert!(parse(&["--max-bad-lines", "-1"]).is_err());
        assert!(parse(&["--wal"]).is_err());
    }

    #[test]
    fn admin_and_watch_flags() {
        let o = parse(&[
            "--admin",
            "tcp:127.0.0.1:9100",
            "--ready-deadline-ms",
            "2500",
            "--interval-ms",
            "500",
            "--iterations",
            "3",
        ])
        .expect("valid");
        assert_eq!(o.admin.as_deref(), Some("tcp:127.0.0.1:9100"));
        assert_eq!(o.ready_deadline_ms, 2500);
        assert_eq!(o.interval_ms, 500);
        assert_eq!(o.iterations, Some(3));

        let d = parse(&[]).expect("defaults");
        assert!(d.admin.is_none());
        assert_eq!(d.ready_deadline_ms, 5000);
        assert_eq!(d.interval_ms, 1000);
        assert!(d.iterations.is_none());

        assert!(parse(&["--ready-deadline-ms", "0"]).is_err());
        assert!(parse(&["--interval-ms", "0"]).is_err());
        assert!(parse(&["--iterations", "0"]).is_err());
        assert!(parse(&["--admin"]).is_err());
    }

    #[test]
    fn gen_arrivals_flags() {
        let o = parse(&[
            "--process",
            "heavy-tail",
            "--slots",
            "24",
            "--start-slot",
            "8",
            "--peak",
            "200",
        ])
        .expect("valid");
        assert_eq!(o.process, "heavy-tail");
        assert_eq!(o.slots, Some(24));
        assert_eq!(o.start_slot, 8);
        assert_eq!(o.peak, Some(200.0));

        let d = parse(&[]).expect("defaults");
        assert_eq!(d.process, "diurnal");
        assert_eq!(d.start_slot, 0);
        assert!(d.slots.is_none() && d.peak.is_none());

        assert!(parse(&["--slots", "0"]).is_err());
        assert!(parse(&["--peak", "-3"]).is_err());
        assert!(parse(&["--peak", "inf"]).is_err());
    }

    #[test]
    fn tolerance_and_serve_mode_flags() {
        let o = parse(&["--tolerance", "0.1", "--serve-per-request"]).expect("valid");
        assert!((o.tolerance - 0.1).abs() < 1e-12);
        assert!(o.serve_per_request);
        let d = parse(&[]).expect("defaults");
        assert!((d.tolerance - 0.25).abs() < 1e-12);
        assert!(!d.serve_per_request);
        assert!(parse(&["--tolerance", "-0.5"]).is_err());
        assert!(parse(&["--tolerance", "NaN"]).is_err());
        assert!(parse(&["--tolerance", "much"]).is_err());
    }
}
