//! Chaos harness for the serve daemon: SIGKILL a live daemon at a
//! randomized point in its input stream (or abort it from an injected
//! crash point inside a WAL append / checkpoint write), recover with
//! `--resume` + `--wal`, and require the stitched run's telemetry to be
//! byte-identical to an uninterrupted reference run — at a different
//! resume `--edge-threads`, in both serve modes, under the ci_smoke
//! fault scenario.
//!
//! The kill points come from a seeded generator (`0xC0FFEE`; override
//! with the `CHAOS_SEED` env var). Every assertion message carries the
//! seed so a CI failure is reproducible locally.

#![cfg(unix)]

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

use cne_core::wal;
use cne_core::Checkpoint;

const BIN: &str = env!("CARGO_BIN_EXE_carbon-edge");
const FAULTS: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios/ci_smoke.json");
const DEFAULT_CHAOS_SEED: u64 = 0xC0FFEE;
const SLOTS: usize = 12;
const EDGES: usize = 4;
const SEED: &str = "7";

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_CHAOS_SEED)
}

/// splitmix64 — deterministic kill-point generator, no dependencies.
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cne-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// The known arrival schedule: `rows[t][e]` requests for edge `e` in
/// slot `t`. The upstream source can re-send any suffix of it, which is
/// exactly what crash recovery needs.
fn rows() -> Vec<Vec<u64>> {
    (0..SLOTS)
        .map(|t| (0..EDGES).map(|e| ((t * 7 + e * 3) % 5) as u64).collect())
        .collect()
}

/// The full wire stream: one request line per `(slot, edge)` with
/// traffic, then an explicit `slot_end` per slot.
fn full_stream() -> Vec<String> {
    let rows = rows();
    let mut lines = Vec::new();
    for row in &rows {
        for (e, &c) in row.iter().enumerate() {
            if c > 0 {
                lines.push(format!("{{\"edge\":{e},\"count\":{c}}}"));
            }
        }
        lines.push("{\"slot_end\":true}".to_owned());
    }
    lines
}

/// What the source re-sends after a crash: the open slot's missing
/// arrivals (full row minus what the WAL already acknowledged), then
/// every later slot verbatim.
fn remainder_stream(cursor: usize, open: &[u64]) -> Vec<String> {
    let rows = rows();
    let mut lines = Vec::new();
    for (t, row) in rows.iter().enumerate().skip(cursor) {
        for (e, &want) in row.iter().enumerate() {
            let have = if t == cursor { open[e] } else { 0 };
            assert!(
                have <= want,
                "WAL acknowledged {have} requests for edge {e} in slot {t}, \
                 but the source only ever sent {want}"
            );
            if want > have {
                lines.push(format!("{{\"edge\":{e},\"count\":{}}}", want - have));
            }
        }
        lines.push("{\"slot_end\":true}".to_owned());
    }
    lines
}

/// Base `serve` invocation; every run shares the deterministic knobs so
/// traces are comparable.
fn serve_cmd(per_request: bool, extra: &[&str]) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.arg("serve")
        .args(["--quick", "--edges", "4", "--slots", "12"])
        .args(["--seed", SEED, "--policy", "ours", "--faults", FAULTS]);
    if per_request {
        cmd.arg("--serve-per-request");
    }
    cmd.args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    cmd
}

/// Runs a daemon to completion over the given lines; returns its output.
fn run_to_completion(mut cmd: Command, lines: &[String]) -> Output {
    let mut child = cmd.spawn().expect("spawn daemon");
    let mut stdin = child.stdin.take().expect("stdin");
    for line in lines {
        // EPIPE is expected when the daemon dies mid-stream (crash
        // injection) or finishes its horizon early.
        if writeln!(stdin, "{line}").is_err() {
            break;
        }
    }
    drop(stdin);
    child.wait_with_output().expect("wait")
}

/// The uninterrupted reference run's telemetry bytes.
fn reference_trace(dir: &Path, per_request: bool) -> Vec<u8> {
    let out = dir.join("ref.jsonl");
    let output = run_to_completion(
        serve_cmd(
            per_request,
            &["--telemetry", out.to_str().expect("utf-8 path")],
        ),
        &full_stream(),
    );
    assert!(
        output.status.success(),
        "reference run failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    std::fs::read(&out).expect("reference telemetry")
}

/// Feeds `kill_after` lines to a daemon, waits for its WAL to stop
/// growing (it has durably acknowledged everything it will), then
/// SIGKILLs it. The stdin pipe stays open throughout — EOF would make
/// the daemon pad out the horizon and exit cleanly instead.
fn run_and_kill(mut cmd: Command, lines: &[String], kill_after: usize, waldir: &Path) {
    let mut child = cmd
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn daemon");
    let mut stdin = child.stdin.take().expect("stdin");
    for line in &lines[..kill_after] {
        writeln!(stdin, "{line}").expect("write stream");
    }
    stdin.flush().expect("flush stream");
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut last = usize::MAX;
    let mut stable = 0;
    while Instant::now() < deadline && stable < 4 {
        std::thread::sleep(Duration::from_millis(75));
        let n = wal::read_records(waldir).map_or(0, |r| r.records.len());
        if n == last && n > 0 {
            stable += 1;
        } else {
            stable = 0;
            last = n;
        }
    }
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");
    drop(stdin);
}

/// Reconstructs the recovered cursor the same way `--resume` will: the
/// checkpoint's covered prefix plus the WAL tail's closed slots, and
/// the open slot's acknowledged arrivals.
fn recovered_state(ckpt: &Path, waldir: &Path) -> (usize, Vec<u64>) {
    let start = if ckpt.exists() {
        Checkpoint::load(ckpt)
            .expect("readable checkpoint")
            .arrivals
            .len()
    } else {
        0
    };
    let recovery = wal::read_records(waldir).expect("scan WAL");
    let tail = wal::replay(&recovery.records, EDGES, start as u64).expect("replay");
    (start + tail.closed.len(), tail.open)
}

/// Resumes a crashed run and returns `(daemon output, telemetry bytes)`.
fn resume_run(
    dir: &Path,
    waldir: &Path,
    ckpt: &Path,
    per_request: bool,
    edge_threads: &str,
) -> (Output, Vec<u8>) {
    let (cursor, open) = recovered_state(ckpt, waldir);
    assert!(cursor < SLOTS, "daemon was killed after its horizon");
    let out = dir.join(format!("resume-{edge_threads}.jsonl"));
    let output = run_to_completion(
        serve_cmd(
            per_request,
            &[
                "--resume",
                ckpt.to_str().expect("utf-8 path"),
                "--checkpoint",
                ckpt.to_str().expect("utf-8 path"),
                "--checkpoint-every",
                "3",
                "--wal",
                waldir.to_str().expect("utf-8 path"),
                "--edge-threads",
                edge_threads,
                "--telemetry",
                out.to_str().expect("utf-8 path"),
            ],
        ),
        &remainder_stream(cursor, &open),
    );
    assert!(
        output.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    (output, std::fs::read(&out).expect("resumed telemetry"))
}

/// SIGKILL at seeded random stream offsets, across fsync policies,
/// serve modes, and resume edge-thread counts: recovery is always
/// byte-identical to the uninterrupted run.
#[test]
fn sigkill_recovery_is_bit_identical() {
    let seed = chaos_seed();
    let mut rng = seed;
    eprintln!("chaos seed   : {seed:#x} (override with CHAOS_SEED)");
    let lines = full_stream();

    // (per_request, wal_sync, resume edge threads)
    let grid = [
        (false, "every", "4"),
        (false, "slot", "1"),
        (false, "off", "4"),
        (true, "slot", "1"),
    ];
    for (i, (per_request, wal_sync, threads)) in grid.into_iter().enumerate() {
        let dir = temp_dir(&format!("kill{i}"));
        let reference = reference_trace(&dir, per_request);
        let waldir = dir.join("wal");
        let ckpt = dir.join("state.ckpt");
        let kill_after = 1 + (next_rand(&mut rng) as usize) % (lines.len() - 1);
        run_and_kill(
            serve_cmd(
                per_request,
                &[
                    "--checkpoint",
                    ckpt.to_str().expect("utf-8 path"),
                    "--checkpoint-every",
                    "3",
                    "--wal",
                    waldir.to_str().expect("utf-8 path"),
                    "--wal-sync",
                    wal_sync,
                    "--telemetry",
                    dir.join("chaos.jsonl").to_str().expect("utf-8 path"),
                ],
            ),
            &lines,
            kill_after,
            &waldir,
        );
        let (_, trace) = resume_run(&dir, &waldir, &ckpt, per_request, threads);
        assert_eq!(
            trace, reference,
            "telemetry diverged after SIGKILL at line {kill_after} \
             (chaos seed {seed:#x}, per_request={per_request}, \
             wal-sync={wal_sync}, resume threads {threads})"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// SIGKILL immediately after a group-committed burst: a batch of
/// request lines delivered as one pipe write lands in the WAL as a
/// single multi-pair `Arrivals` record (the group commit must actually
/// happen, not degrade to per-line appends), the surviving log is a
/// clean record prefix, and resuming from it reproduces the reference
/// telemetry byte-for-byte.
#[test]
fn group_commit_burst_survives_sigkill() {
    let dir = temp_dir("group-commit");
    let reference = reference_trace(&dir, false);
    let waldir = dir.join("wal");
    let ckpt = dir.join("state.ckpt");

    // Slot 0 complete, then slot 1's request burst with no slot_end:
    // the daemon is killed with slot 1 open but its burst durably
    // acknowledged as one coalesced record.
    let lines = full_stream();
    let open_requests = rows()[1].iter().filter(|&&c| c > 0).count();
    let kill_after = lines
        .iter()
        .position(|l| l.contains("slot_end"))
        .expect("slot 0 end")
        + 1
        + open_requests;
    let burst = lines[..kill_after].join("\n") + "\n";

    let mut child = serve_cmd(
        false,
        &[
            "--checkpoint",
            ckpt.to_str().expect("utf-8 path"),
            "--checkpoint-every",
            "3",
            "--wal",
            waldir.to_str().expect("utf-8 path"),
            "--wal-sync",
            "every",
            "--telemetry",
            dir.join("chaos.jsonl").to_str().expect("utf-8 path"),
        ],
    )
    .stdout(Stdio::null())
    .stderr(Stdio::null())
    .spawn()
    .expect("spawn daemon");
    let mut stdin = child.stdin.take().expect("stdin");
    // One write syscall: the whole burst reaches the block reader as a
    // single chunk, so the daemon must coalesce it into one record.
    stdin.write_all(burst.as_bytes()).expect("write burst");
    stdin.flush().expect("flush burst");
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut last = usize::MAX;
    let mut stable = 0;
    while Instant::now() < deadline && stable < 4 {
        std::thread::sleep(Duration::from_millis(75));
        let n = wal::read_records(&waldir).map_or(0, |r| r.records.len());
        if n == last && n > 0 {
            stable += 1;
        } else {
            stable = 0;
            last = n;
        }
    }
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");
    drop(stdin);

    // The surviving log is a readable prefix and the burst was group
    // committed: at least one Arrivals record carries several pairs.
    let recovery = wal::read_records(&waldir).expect("clean WAL prefix after SIGKILL");
    assert!(
        recovery.records.iter().any(|r| matches!(
            r,
            wal::WalRecord::Arrivals { pairs, .. } if pairs.len() > 1
        )),
        "burst was not group committed: {:?}",
        recovery.records
    );
    let tail = wal::replay(&recovery.records, EDGES, 0).expect("replay");
    assert_eq!(
        tail.open_lines, open_requests as u64,
        "group-committed record must replay per-line accounting"
    );

    let (_, trace) = resume_run(&dir, &waldir, &ckpt, false, "4");
    assert_eq!(
        trace, reference,
        "telemetry diverged after SIGKILL mid group-committed burst"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Injected crash points inside the storage layer itself — a torn WAL
/// append, a torn checkpoint temp file, a fully written but un-renamed
/// checkpoint — all recover bit-identically, and the torn WAL tail is
/// reported (then truncated), never a panic.
#[test]
fn injected_crash_points_recover_bit_identically() {
    let cases = [
        ("wal-torn-append:5", true),
        ("ckpt-torn-tmp:1", false),
        ("ckpt-pre-rename:2", false),
    ];
    for (spec, expect_torn) in cases {
        let tag = spec.split(':').next().expect("point");
        let dir = temp_dir(tag);
        let reference = reference_trace(&dir, false);
        let waldir = dir.join("wal");
        let ckpt = dir.join("state.ckpt");
        let mut cmd = serve_cmd(
            false,
            &[
                "--checkpoint",
                ckpt.to_str().expect("utf-8 path"),
                "--checkpoint-every",
                "3",
                "--wal",
                waldir.to_str().expect("utf-8 path"),
                "--telemetry",
                dir.join("chaos.jsonl").to_str().expect("utf-8 path"),
            ],
        );
        cmd.env("CARBON_EDGE_CRASH", spec);
        let output = run_to_completion(cmd, &full_stream());
        assert!(!output.status.success(), "{spec} must abort the daemon");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("\"event\":\"crash_injected\""),
            "{spec}: missing crash event in {stderr}"
        );

        let (resumed, trace) = resume_run(&dir, &waldir, &ckpt, false, "4");
        let resumed_err = String::from_utf8_lossy(&resumed.stderr);
        if expect_torn {
            assert!(
                resumed_err.contains("\"event\":\"wal_torn_tail\""),
                "{spec}: torn tail not reported in {resumed_err}"
            );
        }
        assert_eq!(trace, reference, "telemetry diverged after {spec}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A fresh (non-`--resume`) start refuses to clobber a WAL directory
/// that still holds a previous run's segments.
#[test]
fn fresh_start_refuses_existing_wal() {
    let dir = temp_dir("clobber");
    let waldir = dir.join("wal");
    let (mut handle, _) = wal::Wal::open(&waldir, wal::WalOptions::default()).expect("seed WAL");
    handle
        .append(&wal::WalRecord::SlotClose { slot: 0 })
        .expect("append");
    drop(handle);

    let output = run_to_completion(
        serve_cmd(false, &["--wal", waldir.to_str().expect("utf-8 path")]),
        &[],
    );
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("already holds WAL segments"),
        "missing clobber refusal in {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Hostile wire input end-to-end: garbage within the `--max-bad-lines`
/// budget is rejected line-by-line without touching the deterministic
/// run; a blown budget kills the daemon with a structured error.
#[test]
fn bad_line_budget_is_enforced_end_to_end() {
    let garbage = [
        "### not json at all",
        "{\"edge\": \"zero\"}",
        "{\"edge\": 0, \"count\": -3}",
    ];

    // Within budget: the run completes and matches the clean reference.
    let dir = temp_dir("budget-ok");
    let reference = reference_trace(&dir, false);
    let mut lines = full_stream();
    for (i, g) in garbage.iter().enumerate() {
        lines.insert(i * 7, (*g).to_owned());
    }
    let out = dir.join("noisy.jsonl");
    let output = run_to_completion(
        serve_cmd(false, &["--telemetry", out.to_str().expect("utf-8 path")]),
        &lines,
    );
    assert!(
        output.status.success(),
        "in-budget garbage must not kill the daemon: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("\"event\":\"bad_line\""),
        "rejections must be logged: {stderr}"
    );
    assert_eq!(
        std::fs::read(&out).expect("telemetry"),
        reference,
        "garbage lines leaked into the deterministic trace"
    );
    std::fs::remove_dir_all(&dir).ok();

    // Blown budget: a structured fatal error, not a hang or a panic.
    let dir = temp_dir("budget-blown");
    let mut lines: Vec<String> = garbage.iter().map(|g| (*g).to_owned()).collect();
    lines.push("more garbage".to_owned());
    lines.extend(full_stream());
    let output = run_to_completion(serve_cmd(false, &["--max-bad-lines", "2"]), &lines);
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("too many bad wire lines"),
        "missing budget error in {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A persistently failing checkpoint path flips the daemon into
/// degraded-durability mode (structured event, retries logged) but the
/// run itself keeps serving and still produces the reference trace.
#[test]
fn persistent_checkpoint_failure_degrades_but_serves() {
    let dir = temp_dir("degraded");
    let reference = reference_trace(&dir, false);
    let out = dir.join("degraded.jsonl");
    let ckpt = dir.join("no-such-dir").join("state.ckpt");
    let output = run_to_completion(
        serve_cmd(
            false,
            &[
                "--checkpoint",
                ckpt.to_str().expect("utf-8 path"),
                "--checkpoint-every",
                "6",
                "--telemetry",
                out.to_str().expect("utf-8 path"),
            ],
        ),
        &full_stream(),
    );
    assert!(
        output.status.success(),
        "a durability failure must not kill the run: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("\"event\":\"checkpoint_retry\""),
        "retries must be logged: {stderr}"
    );
    assert!(
        stderr.contains("\"event\":\"durability_degraded\""),
        "degradation must be announced: {stderr}"
    );
    assert_eq!(
        std::fs::read(&out).expect("telemetry"),
        reference,
        "degraded mode leaked into the deterministic trace"
    );
    std::fs::remove_dir_all(&dir).ok();
}
