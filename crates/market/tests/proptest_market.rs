//! Property-based tests for the market crate: ledger conservation under
//! arbitrary operation sequences and clamping invariants of execution.

use cne_market::{AllowanceLedger, CarbonMarket, EmissionModel, TradeBounds};
use cne_util::units::{Allowances, EmissionRate, GramsCo2, KWh, PricePerAllowance};
use proptest::prelude::*;

/// One ledger operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Emit(f64),
    Buy(f64, f64),
    Sell(f64, f64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0.0..1e5f64).prop_map(Op::Emit),
        (0.0..100.0f64, 0.0..1000.0f64).prop_map(|(a, c)| Op::Buy(a, c)),
        (0.0..100.0f64, 0.0..1000.0f64).prop_map(|(a, c)| Op::Sell(a, c)),
    ]
}

proptest! {
    /// held − cap ≡ bought − sold and cash ≡ spent − earned, whatever
    /// the operation order; violation is exactly [emitted − held]⁺.
    #[test]
    fn ledger_conservation(
        cap in 0.0..1000.0f64,
        ops in proptest::collection::vec(op_strategy(), 0..60),
    ) {
        let mut ledger = AllowanceLedger::new(Allowances::new(cap));
        let (mut emitted, mut bought, mut sold, mut spent, mut earned) =
            (0.0, 0.0, 0.0, 0.0, 0.0);
        for op in ops {
            match op {
                Op::Emit(g) => {
                    ledger.record_emission(GramsCo2::new(g));
                    emitted += g;
                }
                Op::Buy(a, c) => {
                    ledger.record_purchase(Allowances::new(a), cne_util::units::Cents::new(c));
                    bought += a;
                    spent += c;
                }
                Op::Sell(a, c) => {
                    ledger.record_sale(Allowances::new(a), cne_util::units::Cents::new(c));
                    sold += a;
                    earned += c;
                }
            }
        }
        prop_assert!((ledger.held().get() - (cap + bought - sold)).abs() < 1e-6);
        prop_assert!((ledger.net_trading_cost().get() - (spent - earned)).abs() < 1e-6);
        let expected_violation = (emitted / 1000.0 - (cap + bought - sold)).max(0.0);
        prop_assert!((ledger.violation().get() - expected_violation).abs() < 1e-6);
        prop_assert_eq!(ledger.is_neutral(), expected_violation <= 1e-9);
    }

    /// Market execution clamps to bounds and posts exactly the clamped
    /// quantities at the posted prices.
    #[test]
    fn execution_clamps_and_posts(
        max_buy in 0.0..50.0f64,
        max_sell in 0.0..50.0f64,
        z in -10.0..100.0f64,
        w in -10.0..100.0f64,
        c in 0.0..20.0f64,
    ) {
        let market = CarbonMarket::new(TradeBounds::new(
            Allowances::new(max_buy),
            Allowances::new(max_sell),
        ));
        let mut ledger = AllowanceLedger::new(Allowances::new(10.0));
        let r = market.execute(
            PricePerAllowance::new(c),
            PricePerAllowance::new(0.9 * c),
            Allowances::new(z),
            Allowances::new(w),
            &mut ledger,
        );
        prop_assert!((0.0..=max_buy).contains(&r.bought.get()));
        prop_assert!((0.0..=max_sell).contains(&r.sold.get()));
        prop_assert!((r.cost.get() - r.bought.get() * c).abs() < 1e-9);
        prop_assert!((r.revenue.get() - r.sold.get() * 0.9 * c).abs() < 1e-9);
        prop_assert!((ledger.bought().get() - r.bought.get()).abs() < 1e-12);
    }

    /// Emissions are linear in energy and in the rate factor.
    #[test]
    fn emission_model_linearity(
        rate in 0.0..2000.0f64,
        scale in 0.1..1e6f64,
        energy in 0.0..100.0f64,
        factor in 0.1..10.0f64,
    ) {
        let m = EmissionModel::new(EmissionRate::new(rate), scale);
        let base = m.emissions(KWh::new(energy)).get();
        let double_energy = m.emissions(KWh::new(2.0 * energy)).get();
        prop_assert!((double_energy - 2.0 * base).abs() < 1e-6 * (1.0 + base));
        let scaled = m.with_rate_factor(factor).emissions(KWh::new(energy)).get();
        prop_assert!((scaled - factor * base).abs() < 1e-6 * (1.0 + base));
    }
}
