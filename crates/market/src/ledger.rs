//! The allowance ledger: constraint (1c) as running state.
//!
//! Tracks cumulative emissions, purchases `Σ z`, sales `Σ w`, and the
//! trading cash flow `Σ (z c − w r)`. The paper's long-term carbon-
//! neutrality constraint is
//!
//! ```text
//! Σ_t emissions_t  ≤  R + Σ_t z^t − Σ_t w^t
//! ```
//!
//! and its positive-part violation is the "fit" of Theorem 2.

use cne_util::units::{Allowances, Cents, GramsCo2};
use serde::{Deserialize, Serialize};

/// Running cap-and-trade account of the service provider.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllowanceLedger {
    cap: Allowances,
    bought: Allowances,
    sold: Allowances,
    emitted: GramsCo2,
    spent: Cents,
    earned: Cents,
}

impl AllowanceLedger {
    /// Opens a ledger with the initial regulator-allocated cap `R`.
    ///
    /// # Panics
    /// Panics if the cap is negative or not finite.
    #[must_use]
    pub fn new(cap: Allowances) -> Self {
        assert!(
            cap.get().is_finite() && cap.get() >= 0.0,
            "cap must be finite and non-negative"
        );
        Self {
            cap,
            bought: Allowances::ZERO,
            sold: Allowances::ZERO,
            emitted: GramsCo2::ZERO,
            spent: Cents::ZERO,
            earned: Cents::ZERO,
        }
    }

    /// The initial cap `R`.
    #[must_use]
    pub fn cap(&self) -> Allowances {
        self.cap
    }

    /// Cumulative purchases `Σ z`.
    #[must_use]
    pub fn bought(&self) -> Allowances {
        self.bought
    }

    /// Cumulative sales `Σ w`.
    #[must_use]
    pub fn sold(&self) -> Allowances {
        self.sold
    }

    /// Cumulative emissions.
    #[must_use]
    pub fn emitted(&self) -> GramsCo2 {
        self.emitted
    }

    /// Cash spent buying allowances.
    #[must_use]
    pub fn spent(&self) -> Cents {
        self.spent
    }

    /// Cash earned selling allowances.
    #[must_use]
    pub fn earned(&self) -> Cents {
        self.earned
    }

    /// Net trading cost `Σ (z c − w r)` so far — positive means the
    /// provider paid the market.
    #[must_use]
    pub fn net_trading_cost(&self) -> Cents {
        self.spent - self.earned
    }

    /// Allowances currently held: `R + Σ z − Σ w`.
    #[must_use]
    pub fn held(&self) -> Allowances {
        self.cap + self.bought - self.sold
    }

    /// Signed slack of constraint (1c): `held − emitted` in allowances.
    /// Negative when the system is in violation.
    #[must_use]
    pub fn neutrality_slack(&self) -> Allowances {
        self.held() - self.emitted.to_allowances()
    }

    /// The constraint violation `[emitted − held]⁺` (the paper's fit
    /// integrand at the horizon).
    #[must_use]
    pub fn violation(&self) -> Allowances {
        (-self.neutrality_slack()).positive_part()
    }

    /// Whether the cumulative constraint currently holds.
    #[must_use]
    pub fn is_neutral(&self) -> bool {
        self.neutrality_slack().get() >= -1e-9
    }

    /// Records carbon emitted by operations.
    ///
    /// # Panics
    /// Panics if `grams` is negative or not finite.
    pub fn record_emission(&mut self, grams: GramsCo2) {
        assert!(
            grams.get().is_finite() && grams.get() >= 0.0,
            "emission must be finite and non-negative"
        );
        self.emitted += grams;
    }

    /// Records a purchase of `amount` allowances for `cost` cash.
    ///
    /// # Panics
    /// Panics on negative or non-finite inputs.
    pub fn record_purchase(&mut self, amount: Allowances, cost: Cents) {
        assert!(
            amount.get().is_finite() && amount.get() >= 0.0,
            "purchase amount must be finite and non-negative"
        );
        assert!(
            cost.get().is_finite() && cost.get() >= 0.0,
            "purchase cost must be finite and non-negative"
        );
        self.bought += amount;
        self.spent += cost;
    }

    /// Records a sale of `amount` allowances for `revenue` cash.
    ///
    /// # Panics
    /// Panics on negative or non-finite inputs.
    pub fn record_sale(&mut self, amount: Allowances, revenue: Cents) {
        assert!(
            amount.get().is_finite() && amount.get() >= 0.0,
            "sale amount must be finite and non-negative"
        );
        assert!(
            revenue.get().is_finite() && revenue.get() >= 0.0,
            "sale revenue must be finite and non-negative"
        );
        self.sold += amount;
        self.earned += revenue;
    }

    /// Snapshots the accumulated totals as plain numbers, for a
    /// checkpoint. The cap is intentionally excluded: it is part of
    /// the environment configuration, not of the run state, and
    /// [`AllowanceLedger::from_parts`] takes it back from there.
    #[must_use]
    pub fn to_parts(&self) -> LedgerParts {
        LedgerParts {
            bought: self.bought.get(),
            sold: self.sold.get(),
            emitted: self.emitted.get(),
            spent: self.spent.get(),
            earned: self.earned.get(),
        }
    }

    /// Reopens a ledger from checkpointed totals under the given cap.
    ///
    /// # Panics
    /// Panics if the cap or any total is negative or not finite.
    #[must_use]
    pub fn from_parts(cap: Allowances, parts: &LedgerParts) -> Self {
        let mut ledger = Self::new(cap);
        ledger.record_purchase(Allowances::new(parts.bought), Cents::new(parts.spent));
        ledger.record_sale(Allowances::new(parts.sold), Cents::new(parts.earned));
        ledger.record_emission(GramsCo2::new(parts.emitted));
        ledger
    }
}

/// Plain-data snapshot of an [`AllowanceLedger`]'s accumulated totals
/// (everything except the configured cap), used by checkpoint/restore.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LedgerParts {
    /// Cumulative purchases `Σ z`, in allowances.
    pub bought: f64,
    /// Cumulative sales `Σ w`, in allowances.
    pub sold: f64,
    /// Cumulative emissions, in grams of CO₂.
    pub emitted: f64,
    /// Cash spent buying allowances, in cents.
    pub spent: f64,
    /// Cash earned selling allowances, in cents.
    pub earned: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ledger_is_neutral() {
        let l = AllowanceLedger::new(Allowances::new(500.0));
        assert!(l.is_neutral());
        assert_eq!(l.held().get(), 500.0);
        assert_eq!(l.violation().get(), 0.0);
        assert_eq!(l.net_trading_cost().get(), 0.0);
    }

    #[test]
    fn emission_erodes_slack() {
        let mut l = AllowanceLedger::new(Allowances::new(2.0));
        l.record_emission(GramsCo2::new(1500.0)); // 1.5 allowances
        assert!(l.is_neutral());
        assert!((l.neutrality_slack().get() - 0.5).abs() < 1e-12);
        l.record_emission(GramsCo2::new(1500.0)); // total 3.0
        assert!(!l.is_neutral());
        assert!((l.violation().get() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trading_moves_held_and_cash() {
        let mut l = AllowanceLedger::new(Allowances::new(10.0));
        l.record_purchase(Allowances::new(4.0), Cents::new(32.0));
        l.record_sale(Allowances::new(1.0), Cents::new(7.0));
        assert!((l.held().get() - 13.0).abs() < 1e-12);
        assert!((l.net_trading_cost().get() - 25.0).abs() < 1e-12);
        assert_eq!(l.bought().get(), 4.0);
        assert_eq!(l.sold().get(), 1.0);
    }

    #[test]
    fn conservation_identity() {
        // held − cap == bought − sold, always.
        let mut l = AllowanceLedger::new(Allowances::new(5.0));
        l.record_purchase(Allowances::new(2.5), Cents::new(20.0));
        l.record_sale(Allowances::new(0.5), Cents::new(3.0));
        l.record_emission(GramsCo2::new(999.0));
        let lhs = l.held() - l.cap();
        let rhs = l.bought() - l.sold();
        assert!((lhs.get() - rhs.get()).abs() < 1e-12);
    }

    #[test]
    fn selling_can_cause_violation() {
        let mut l = AllowanceLedger::new(Allowances::new(1.0));
        l.record_emission(GramsCo2::new(900.0));
        assert!(l.is_neutral());
        l.record_sale(Allowances::new(0.5), Cents::new(4.0));
        assert!(!l.is_neutral());
        assert!((l.violation().get() - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "purchase amount")]
    fn negative_purchase_rejected() {
        let mut l = AllowanceLedger::new(Allowances::new(1.0));
        l.record_purchase(Allowances::new(-1.0), Cents::ZERO);
    }

    #[test]
    fn parts_round_trip_is_exact() {
        let mut l = AllowanceLedger::new(Allowances::new(7.25));
        l.record_purchase(Allowances::new(2.5), Cents::new(20.125));
        l.record_sale(Allowances::new(0.5), Cents::new(3.0625));
        l.record_emission(GramsCo2::new(999.375));
        let restored = AllowanceLedger::from_parts(l.cap(), &l.to_parts());
        assert_eq!(restored, l);
        assert_eq!(restored.to_parts(), l.to_parts());
    }
}
