//! Cap-and-trade carbon accounting for the cloud–edge system.
//!
//! Implements the market side of the paper's model (Section II-A,
//! "Carbon Allowance Trading"):
//!
//! * [`emission`] — the emission model
//!   `ρ · (E_{i,n}^t + y_i^t F_{i,n})` with `E = φ_n M_i^t` (inference
//!   energy) and `F = ϑ_i W_n` (model-transfer energy);
//! * [`ledger`] — the allowance ledger: initial cap `R`, cumulative
//!   purchases/sales/emissions, cash flow, and the neutrality constraint
//!   `Σ emissions ≤ R + Σ z − Σ w` (constraint (1c));
//! * [`market`] — per-slot trade execution against a price series with
//!   the per-slot trade bounds that make the trading problem well-posed
//!   (Theorem 2's bounded-feasible-set assumption).
//!
//! # Examples
//!
//! ```
//! use cne_market::ledger::AllowanceLedger;
//! use cne_util::units::{Allowances, GramsCo2};
//!
//! let mut ledger = AllowanceLedger::new(Allowances::new(10.0));
//! ledger.record_emission(GramsCo2::new(12_000.0)); // 12 allowances worth
//! assert!(!ledger.is_neutral());
//! ledger.record_purchase(Allowances::new(2.0), cne_util::units::Cents::new(16.0));
//! assert!(ledger.is_neutral());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod emission;
pub mod ledger;
pub mod market;

pub use emission::EmissionModel;
pub use ledger::{AllowanceLedger, LedgerParts};
pub use market::{CarbonMarket, TradeBounds, TradeReceipt};
