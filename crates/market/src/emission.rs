//! The paper's emission model.
//!
//! The carbon emitted by edge `i` in slot `t` when hosting model `n` is
//!
//! ```text
//! ρ · (E_{i,n}^t + y_i^t · F_{i,n})
//!   E_{i,n}^t = φ_n · M_i^t      (inference energy)
//!   F_{i,n}   = ϑ_i · W_n        (model transfer energy, on switch)
//! ```
//!
//! with `ρ` the grid's carbon intensity (default 500 g/kWh).
//!
//! A calibration factor [`EmissionModel::workload_scale`] multiplies the
//! inference energy: the paper's literal constants (`φ ≈ 10⁻⁷` kWh,
//! tens of thousands of requests per slot, cap 500) put total emissions
//! orders of magnitude below the cap, so the cap-and-trade mechanism
//! would never bind. The scale — interpreted as inference requests per
//! counted passenger — is chosen by `cne-core` so that a default run's
//! cumulative emissions are a small multiple of the cap, which is the
//! regime the paper's Figs. 6–7 sweep around. The factor is explicit
//! and documented rather than hidden in the constants.

use cne_util::units::{EmissionRate, EnergyPerMegabyte, EnergyPerSample, GramsCo2, KWh, Megabytes};
use serde::{Deserialize, Serialize};

/// Emission accounting for one system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmissionModel {
    rate: EmissionRate,
    workload_scale: f64,
}

impl EmissionModel {
    /// Creates a model with the given grid carbon intensity and
    /// workload calibration factor.
    ///
    /// # Panics
    /// Panics if `workload_scale` is not finite and positive.
    #[must_use]
    pub fn new(rate: EmissionRate, workload_scale: f64) -> Self {
        assert!(
            workload_scale.is_finite() && workload_scale > 0.0,
            "workload scale must be positive"
        );
        Self {
            rate,
            workload_scale,
        }
    }

    /// The grid carbon intensity `ρ`.
    #[must_use]
    pub fn rate(&self) -> EmissionRate {
        self.rate
    }

    /// The workload calibration factor (requests per counted arrival).
    #[must_use]
    pub fn workload_scale(&self) -> f64 {
        self.workload_scale
    }

    /// Returns a copy with the emission rate scaled by `factor`
    /// (the Fig. 6 sweep).
    #[must_use]
    pub fn with_rate_factor(&self, factor: f64) -> Self {
        Self {
            rate: self.rate.scaled(factor),
            workload_scale: self.workload_scale,
        }
    }

    /// Inference energy `E = φ_n · (scale · M)` for a slot.
    #[must_use]
    pub fn inference_energy(&self, phi: EnergyPerSample, arrivals: u64) -> KWh {
        KWh::new(phi.get() * self.workload_scale * arrivals as f64)
    }

    /// Transfer energy `F = ϑ_i · W_n` for one model download.
    #[must_use]
    pub fn transfer_energy(&self, theta: EnergyPerMegabyte, size: Megabytes) -> KWh {
        theta.energy_for(size)
    }

    /// Carbon emitted by the given energy consumption.
    #[must_use]
    pub fn emissions(&self, energy: KWh) -> GramsCo2 {
        self.rate.emissions_for(energy)
    }

    /// Full slot emission for one edge: `ρ (E + y·F)`.
    #[must_use]
    pub fn slot_emissions(
        &self,
        phi: EnergyPerSample,
        arrivals: u64,
        switched: bool,
        theta: EnergyPerMegabyte,
        size: Megabytes,
    ) -> GramsCo2 {
        let mut energy = self.inference_energy(phi, arrivals);
        if switched {
            energy += self.transfer_energy(theta, size);
        }
        self.emissions(energy)
    }
}

impl Default for EmissionModel {
    /// Paper constants with unit workload scale.
    fn default() -> Self {
        Self {
            rate: EmissionRate::default(),
            workload_scale: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_energy_matches_formula() {
        let m = EmissionModel::new(EmissionRate::new(500.0), 2.0);
        let e = m.inference_energy(EnergyPerSample::new(8.0e-8), 1000);
        // 8e-8 * 2 * 1000 = 1.6e-4 kWh
        assert!((e.get() - 1.6e-4).abs() < 1e-12);
    }

    #[test]
    fn slot_emissions_add_transfer_on_switch() {
        let m = EmissionModel::default();
        let phi = EnergyPerSample::new(1.0e-7);
        let theta = EnergyPerMegabyte::new(1.0e-6);
        let size = Megabytes::new(10.0);
        let stay = m.slot_emissions(phi, 100, false, theta, size);
        let switch = m.slot_emissions(phi, 100, true, theta, size);
        let extra = switch - stay;
        // transfer energy = 1e-5 kWh → 500 g/kWh → 5e-3 g
        assert!((extra.get() - 5.0e-3).abs() < 1e-12);
    }

    #[test]
    fn rate_factor_scales_linearly() {
        let m = EmissionModel::default();
        let doubled = m.with_rate_factor(2.0);
        let e = KWh::new(0.5);
        assert!((doubled.emissions(e).get() - 2.0 * m.emissions(e).get()).abs() < 1e-12);
        assert_eq!(doubled.workload_scale(), m.workload_scale());
    }

    #[test]
    fn zero_arrivals_zero_energy() {
        let m = EmissionModel::default();
        assert_eq!(m.inference_energy(EnergyPerSample::new(1e-7), 0).get(), 0.0);
    }

    #[test]
    #[should_panic(expected = "workload scale")]
    fn bad_scale_rejected() {
        let _ = EmissionModel::new(EmissionRate::default(), 0.0);
    }
}
