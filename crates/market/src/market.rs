//! Per-slot trade execution.
//!
//! The market accepts a desired purchase `z^t` and sale `w^t`, clamps
//! them to the per-slot trade bounds, executes both legs at the slot's
//! posted prices, and posts the results to the ledger.
//!
//! The bounds exist because the paper's Theorem 2 assumes a bounded
//! feasible set (Assumption 2); with `r = 0.9 c` and overlapping price
//! ranges an unbounded trader could buy cheap and sell dear across
//! slots without limit, making both the offline LP and the online
//! problem ill-posed.

use cne_util::units::{Allowances, Cents, PricePerAllowance};
use serde::{Deserialize, Serialize};

use crate::ledger::AllowanceLedger;

/// Per-slot trade limits `z^t ∈ [0, max_buy]`, `w^t ∈ [0, max_sell]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TradeBounds {
    /// Maximum allowances purchasable per slot.
    pub max_buy: Allowances,
    /// Maximum allowances sellable per slot.
    pub max_sell: Allowances,
}

impl TradeBounds {
    /// Creates bounds.
    ///
    /// # Panics
    /// Panics if either bound is negative or not finite.
    #[must_use]
    pub fn new(max_buy: Allowances, max_sell: Allowances) -> Self {
        assert!(
            max_buy.get().is_finite() && max_buy.get() >= 0.0,
            "max_buy must be finite and non-negative"
        );
        assert!(
            max_sell.get().is_finite() && max_sell.get() >= 0.0,
            "max_sell must be finite and non-negative"
        );
        Self { max_buy, max_sell }
    }

    /// Clamps a desired `(z, w)` pair into the feasible box.
    #[must_use]
    pub fn clamp(&self, z: Allowances, w: Allowances) -> (Allowances, Allowances) {
        let z = z.max(Allowances::ZERO).min(self.max_buy);
        let w = w.max(Allowances::ZERO).min(self.max_sell);
        (z, w)
    }
}

/// The outcome of one slot's trading.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TradeReceipt {
    /// Allowances actually bought (after clamping).
    pub bought: Allowances,
    /// Allowances actually sold (after clamping).
    pub sold: Allowances,
    /// Cash paid for the purchase leg.
    pub cost: Cents,
    /// Cash received for the sale leg.
    pub revenue: Cents,
}

impl TradeReceipt {
    /// Net cash outflow of the slot: `z c − w r`.
    #[must_use]
    pub fn net_cost(&self) -> Cents {
        self.cost - self.revenue
    }

    /// Net allowances acquired: `z − w`.
    #[must_use]
    pub fn net_bought(&self) -> Allowances {
        self.bought - self.sold
    }
}

/// A carbon market with fixed per-slot trade bounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CarbonMarket {
    bounds: TradeBounds,
}

impl CarbonMarket {
    /// Creates a market with the given bounds.
    #[must_use]
    pub fn new(bounds: TradeBounds) -> Self {
        Self { bounds }
    }

    /// The per-slot trade bounds.
    #[must_use]
    pub fn bounds(&self) -> TradeBounds {
        self.bounds
    }

    /// Executes one slot's trades at the posted prices, posting the
    /// results to `ledger`.
    ///
    /// Desired amounts are clamped to `[0, bound]`; NaN requests are
    /// rejected.
    ///
    /// # Panics
    /// Panics if a requested amount or price is NaN/negative-infinite.
    pub fn execute(
        &self,
        buy_price: PricePerAllowance,
        sell_price: PricePerAllowance,
        desired_buy: Allowances,
        desired_sell: Allowances,
        ledger: &mut AllowanceLedger,
    ) -> TradeReceipt {
        assert!(
            !desired_buy.get().is_nan() && !desired_sell.get().is_nan(),
            "trade request must not be NaN"
        );
        assert!(
            buy_price.get().is_finite()
                && sell_price.get().is_finite()
                && buy_price.get() >= 0.0
                && sell_price.get() >= 0.0,
            "prices must be finite and non-negative"
        );
        let (z, w) = self.bounds.clamp(desired_buy, desired_sell);
        let cost = z.value_at(buy_price);
        let revenue = w.value_at(sell_price);
        ledger.record_purchase(z, cost);
        ledger.record_sale(w, revenue);
        TradeReceipt {
            bought: z,
            sold: w,
            cost,
            revenue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn market() -> CarbonMarket {
        CarbonMarket::new(TradeBounds::new(
            Allowances::new(10.0),
            Allowances::new(5.0),
        ))
    }

    #[test]
    fn execute_posts_to_ledger() {
        let m = market();
        let mut ledger = AllowanceLedger::new(Allowances::new(100.0));
        let r = m.execute(
            PricePerAllowance::new(8.0),
            PricePerAllowance::new(7.2),
            Allowances::new(3.0),
            Allowances::new(1.0),
            &mut ledger,
        );
        assert_eq!(r.bought.get(), 3.0);
        assert_eq!(r.sold.get(), 1.0);
        assert!((r.cost.get() - 24.0).abs() < 1e-12);
        assert!((r.revenue.get() - 7.2).abs() < 1e-12);
        assert!((r.net_cost().get() - 16.8).abs() < 1e-12);
        assert!((ledger.held().get() - 102.0).abs() < 1e-12);
        assert!((ledger.net_trading_cost().get() - 16.8).abs() < 1e-12);
    }

    #[test]
    fn clamping_applies() {
        let m = market();
        let mut ledger = AllowanceLedger::new(Allowances::new(0.0));
        let r = m.execute(
            PricePerAllowance::new(1.0),
            PricePerAllowance::new(0.9),
            Allowances::new(99.0),
            Allowances::new(-3.0),
            &mut ledger,
        );
        assert_eq!(r.bought.get(), 10.0);
        assert_eq!(r.sold.get(), 0.0);
    }

    #[test]
    fn net_bought_signed() {
        let r = TradeReceipt {
            bought: Allowances::new(1.0),
            sold: Allowances::new(4.0),
            cost: Cents::new(8.0),
            revenue: Cents::new(28.8),
        };
        assert!((r.net_bought().get() + 3.0).abs() < 1e-12);
        assert!(r.net_cost().get() < 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_request_rejected() {
        let m = market();
        let mut ledger = AllowanceLedger::new(Allowances::new(0.0));
        let _ = m.execute(
            PricePerAllowance::new(1.0),
            PricePerAllowance::new(0.9),
            Allowances::new(f64::NAN),
            Allowances::ZERO,
            &mut ledger,
        );
    }
}
