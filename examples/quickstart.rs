//! Quickstart: train the model zoo, run the paper's controller against
//! a baseline and the offline oracle, and print the outcome.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use carbon_edge::prelude::*;

fn main() {
    let seed = SeedSequence::new(42);

    // A reduced-but-realistic setting so the example finishes quickly:
    // the fast zoo (800-sample pool) and a 40-slot, 3-edge system.
    println!("training the six-model zoo on the MNIST-like task…");
    let zoo = ModelZoo::train(TaskKind::MnistLike, &ZooConfig::fast(), &seed);
    for model in zoo.models() {
        println!(
            "  {:<12} E[loss]={:.3}  accuracy={:.3}  size={:>5.2} MB  φ={:.1e} kWh",
            model.profile.name,
            model.eval.expected_loss(),
            model.eval.accuracy(),
            model.profile.size.get(),
            model.profile.energy_per_sample.get(),
        );
    }

    let config = SimConfig::fast_test(TaskKind::MnistLike);
    let seeds: Vec<u64> = (1..=5).collect();

    println!("\nrunning policies over {} seeds…", seeds.len());
    let specs = [
        PolicySpec::Combo(Combo::ours()),
        PolicySpec::Combo(Combo {
            selector: SelectorKind::Ucb2,
            trader: TraderKind::Lyapunov,
        }),
        PolicySpec::Combo(Combo {
            selector: SelectorKind::Random,
            trader: TraderKind::Random,
        }),
        PolicySpec::Offline,
    ];
    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>10}",
        "policy", "total cost", "violation", "switches", "unit ¢/kg"
    );
    for spec in &specs {
        let result = evaluate(&config, &zoo, &seeds, spec);
        println!(
            "{:<10} {:>12.2} {:>10.3} {:>10.1} {:>10.2}",
            result.name,
            result.mean_total_cost,
            result.mean_violation,
            result.mean_switches,
            result.mean_unit_purchase_cost,
        );
    }
    println!("\nlower total cost is better; Offline is the clairvoyant bound.");
}
