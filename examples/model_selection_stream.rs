//! Model selection on a single edge: watch Algorithm 1 (block
//! Tsallis-INF) learn which model to host while containing switches.
//!
//! Reproduces the phenomenology of the paper's Fig. 8: the number of
//! times each model is selected is inversely related to its expected
//! loss, and the block schedule keeps the number of downloads far below
//! plain Tsallis-INF's.
//!
//! ```text
//! cargo run --release --example model_selection_stream
//! ```

use carbon_edge::bandit::{BlockTsallisInf, ModelSelector, Schedule};
use carbon_edge::prelude::*;
use carbon_edge::simdata::stream::DataStream;

fn run_selector(
    name: &str,
    selector: &mut dyn ModelSelector,
    zoo: &ModelZoo,
    horizon: usize,
    seed: &SeedSequence,
) {
    let mut stream = DataStream::new(zoo.pool().len(), seed.derive("stream"));
    let mut counts = vec![0usize; zoo.len()];
    let mut switches = 0usize;
    let mut last = usize::MAX;
    let mut cumulative_loss = 0.0;
    for t in 0..horizon {
        let arm = selector.select(t);
        if arm != last {
            switches += 1;
            last = arm;
        }
        counts[arm] += 1;
        // Serve a slot of 64 samples with the hosted model; the Brier
        // loss normalized by its max (2.0) is the bandit loss.
        let indices = stream.draw_slot(64);
        let loss = zoo.model(arm).eval.mean_loss_at(&indices) / 2.0;
        cumulative_loss += loss;
        selector.observe(t, arm, loss);
    }
    println!("\n{name}: {switches} downloads, cumulative loss {cumulative_loss:.1}");
    println!("  {:<12} {:>9} {:>9}", "model", "E[loss]", "selected");
    for (n, model) in zoo.models().iter().enumerate() {
        println!(
            "  {:<12} {:>9.3} {:>9}",
            model.profile.name,
            model.eval.expected_loss(),
            counts[n]
        );
    }
}

fn main() {
    let seed = SeedSequence::new(7);
    println!("training the CIFAR-like zoo (larger loss gaps between models)…");
    let zoo = ModelZoo::train(TaskKind::CifarLike, &ZooConfig::fast(), &seed.derive("zoo"));

    let horizon = 2000;
    // Switching costs 4 normalized loss units — a heavy download.
    let mut ours = BlockTsallisInf::new(
        zoo.len(),
        Schedule::theorem1(4.0, zoo.len(), horizon),
        seed.derive("ours"),
    );
    let mut plain = BlockTsallisInf::plain(zoo.len(), horizon, seed.derive("plain"));

    run_selector(
        "Algorithm 1 (block Tsallis-INF, switch-aware)",
        &mut ours,
        &zoo,
        horizon,
        &seed.derive("run-ours"),
    );
    run_selector(
        "plain Tsallis-INF (switch-oblivious baseline)",
        &mut plain,
        &zoo,
        horizon,
        &seed.derive("run-plain"),
    );
    println!(
        "\nboth concentrate on low-loss models; the block schedule needs far fewer downloads."
    );
}
