//! Capacity planning with the simulator's queueing metrics: how many
//! servers must each edge provision so that the models the controller
//! actually chooses never saturate the cluster?
//!
//! The queueing layer is observational (it does not change the paper's
//! objective), so the same runs answer both the carbon question and
//! the provisioning question.
//!
//! ```text
//! cargo run --release --example edge_capacity_planning
//! ```

use carbon_edge::edgesim::QueueingConfig;
use carbon_edge::prelude::*;

fn main() {
    let seed = SeedSequence::new(17);
    println!("training the MNIST-like zoo…");
    let zoo = ModelZoo::train(TaskKind::MnistLike, &ZooConfig::default(), &seed);

    println!(
        "\n{:>8} {:>12} {:>14} {:>14}",
        "servers", "mean util", "peak edge util", "peak wait (ms)"
    );
    for servers in [1usize, 2, 3, 4] {
        let mut config = SimConfig::paper_default(TaskKind::MnistLike, 10);
        config.queueing = QueueingConfig {
            servers_per_edge: servers,
            ..QueueingConfig::default()
        };
        let record = run_single(&config, &zoo, 1, &PolicySpec::Combo(Combo::ours()));
        let utils = record.utilization_series();
        let mean_util = utils.iter().sum::<f64>() / utils.len() as f64;
        let peak_wait = record
            .slots
            .iter()
            .map(|s| s.queueing_delay_ms)
            .fold(0.0f64, f64::max);
        println!(
            "{servers:>8} {mean_util:>12.3} {:>12.3} {peak_wait:>14.2}",
            record.peak_edge_utilization()
        );
    }
    println!(
        "\npick the smallest tier whose peak utilization stays below ~0.9: \
         rush-hour waits explode past that knee."
    );
}
