//! Carbon trading in isolation: Algorithm 2 (online primal–dual)
//! against the Lyapunov and Threshold baselines and the exact offline
//! LP, on the same price and emission series.
//!
//! ```text
//! cargo run --release --example carbon_market_sim
//! ```

use carbon_edge::market::{AllowanceLedger, CarbonMarket, TradeBounds};
use carbon_edge::prelude::*;
use carbon_edge::simdata::prices::{PriceModel, DEFAULT_SELL_RATIO};
use carbon_edge::simdata::samplers::uniform_in;
use carbon_edge::trading::offline::offline_optimal_trades;
use carbon_edge::trading::policy::{TradeContext, TradeObservation, TradingPolicy};
use carbon_edge::trading::{
    Lyapunov, LyapunovConfig, PrimalDual, PrimalDualConfig, Threshold, ThresholdConfig,
};
use carbon_edge::util::units::{Allowances, GramsCo2};

fn main() {
    let seed = SeedSequence::new(99);
    let horizon = 320;
    let cap = 500.0;
    let cap_share = cap / horizon as f64;
    let bounds = TradeBounds::new(Allowances::new(10.0), Allowances::new(5.0));
    let market = CarbonMarket::new(bounds);

    // EU-ETS-like prices and a diurnal emission series that averages
    // ≈ 2× the cap share (so the system must be a net buyer).
    let prices = PriceModel::default().generate(horizon, DEFAULT_SELL_RATIO, &seed.derive("p"));
    let mut rng = seed.derive("emissions").rng();
    let emissions: Vec<f64> = (0..horizon)
        .map(|t| {
            let diurnal = 1.0 + 0.8 * (std::f64::consts::TAU * t as f64 / 80.0).sin();
            2.0 * cap_share * diurnal * uniform_in(&mut rng, 0.85, 1.15)
        })
        .collect();
    let total_emissions: f64 = emissions.iter().sum();
    println!(
        "horizon {horizon}, cap {cap:.0}, total emissions {total_emissions:.0} allowances \
         (deficit {:.0})",
        total_emissions - cap
    );

    let mut policies: Vec<Box<dyn TradingPolicy>> = vec![
        Box::new(PrimalDual::new(PrimalDualConfig::theorem2(
            horizon,
            8.4,
            2.0 * cap_share,
        ))),
        Box::new(Lyapunov::new(LyapunovConfig::default())),
        Box::new(Threshold::new(ThresholdConfig::for_band(Allowances::new(
            2.0 * cap_share,
        )))),
    ];

    println!(
        "\n{:<22} {:>12} {:>12} {:>12}",
        "policy", "cash (¢)", "violation", "net bought"
    );
    for policy in &mut policies {
        let mut ledger = AllowanceLedger::new(Allowances::new(cap));
        for (t, &slot_emissions) in emissions.iter().enumerate() {
            let ctx = TradeContext {
                buy_price: prices.buy(t),
                sell_price: prices.sell(t),
                cap_share,
                bounds,
            };
            let (z, w) = policy.decide(t, &ctx);
            let receipt = market.execute(ctx.buy_price, ctx.sell_price, z, w, &mut ledger);
            ledger.record_emission(GramsCo2::new(slot_emissions * 1000.0));
            policy.observe(
                t,
                &TradeObservation {
                    emissions: slot_emissions,
                    bought: receipt.bought,
                    sold: receipt.sold,
                    buy_price: ctx.buy_price,
                    sell_price: ctx.sell_price,
                    cap_share,
                },
            );
        }
        println!(
            "{:<22} {:>12.1} {:>12.2} {:>12.1}",
            policy.name(),
            ledger.net_trading_cost().get(),
            ledger.violation().get(),
            (ledger.bought() - ledger.sold()).get(),
        );
    }

    // The clairvoyant lower bound.
    let buy: Vec<f64> = prices.buy_series().iter().map(|p| p.get()).collect();
    let sell: Vec<f64> = prices.sell_series().iter().map(|p| p.get()).collect();
    let plan = offline_optimal_trades(
        &buy,
        &sell,
        total_emissions - cap,
        bounds.max_buy.get(),
        bounds.max_sell.get(),
    )
    .expect("feasible");
    println!(
        "{:<22} {:>12.1} {:>12.2} {:>12.1}   (clairvoyant LP)",
        "offline-optimal",
        plan.cost,
        0.0,
        plan.net()
    );
}
