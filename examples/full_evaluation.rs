//! Full §V-style comparison: the paper's twelve baselines, `Ours`, and
//! `Offline` on the paper-default 10-edge, 160-slot system, averaged
//! over seeds, printed as a ranked table.
//!
//! ```text
//! cargo run --release --example full_evaluation [num_edges] [num_seeds]
//! ```

use carbon_edge::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let num_edges: usize = args
        .next()
        .map(|a| a.parse().expect("num_edges must be an integer"))
        .unwrap_or(10);
    let num_seeds: u64 = args
        .next()
        .map(|a| a.parse().expect("num_seeds must be an integer"))
        .unwrap_or(3);
    let seeds: Vec<u64> = (1..=num_seeds).collect();

    let seed = SeedSequence::new(2025);
    println!("training the MNIST-like model zoo (paper-scale pool)…");
    let zoo = ModelZoo::train(TaskKind::MnistLike, &ZooConfig::default(), &seed);

    let config = SimConfig::paper_default(TaskKind::MnistLike, num_edges);
    println!(
        "system: {num_edges} edges, {} slots, cap {}, {} seeds\n",
        config.horizon,
        config.cap.get(),
        seeds.len()
    );

    let mut specs: Vec<PolicySpec> = Combo::all_baselines()
        .into_iter()
        .map(PolicySpec::Combo)
        .collect();
    specs.push(PolicySpec::Combo(Combo::ours()));
    specs.push(PolicySpec::Offline);

    let mut rows: Vec<(String, f64, f64, f64, f64)> = Vec::new();
    for spec in &specs {
        let r = evaluate(&config, &zoo, &seeds, spec);
        println!("  finished {}", r.name);
        rows.push((
            r.name.clone(),
            r.mean_total_cost,
            r.std_total_cost,
            r.mean_violation,
            r.mean_switches,
        ));
    }
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"));

    println!(
        "\n{:<12} {:>12} {:>8} {:>11} {:>10}",
        "policy", "total cost", "± std", "violation", "switches"
    );
    for (name, cost, std, violation, switches) in &rows {
        println!("{name:<12} {cost:>12.1} {std:>8.1} {violation:>11.2} {switches:>10.1}");
    }

    let ours = rows.iter().find(|r| r.0 == "Ours").expect("Ours evaluated");
    let worst = rows.last().expect("non-empty");
    println!(
        "\nOurs reduces total cost by {:.0}% vs the worst baseline ({}).",
        100.0 * (1.0 - ours.1 / worst.1),
        worst.0
    );
}
