//! # carbon-edge
//!
//! A from-scratch reproduction of *"Carbon-Neutralizing Edge AI
//! Inference for Data Streams via Model Control and Allowance Trading"*
//! (ICDCS 2025): joint online control of AI model placement on edges
//! and carbon-allowance trading with a cap-and-trade market.
//!
//! The facade re-exports every workspace crate under one roof:
//!
//! | Module | Contents |
//! |---|---|
//! | [`util`] | unit newtypes, seeding, statistics |
//! | [`simdata`] | synthetic tasks, workload/price traces, topology |
//! | [`nn`] | neural-network substrate and trained model zoo |
//! | [`bandit`] | Algorithm 1 (block Tsallis-INF) and selector baselines |
//! | [`market`] | cap-and-trade accounting |
//! | [`trading`] | Algorithm 2 (online primal–dual), trader baselines, offline LP |
//! | [`edgesim`] | the cloud–edge discrete-time simulator |
//! | [`core`] | combos, offline oracle, experiment runner, regret/fit |
//!
//! # Quickstart
//!
//! ```no_run
//! use carbon_edge::prelude::*;
//!
//! // Train the six-model zoo on the MNIST-like task.
//! let seed = SeedSequence::new(42);
//! let zoo = ModelZoo::train(TaskKind::MnistLike, &ZooConfig::default(), &seed);
//!
//! // Paper-default system: 10 edges, 160 slots, cap 500.
//! let config = SimConfig::paper_default(TaskKind::MnistLike, 10);
//!
//! // Evaluate the paper's approach against a baseline over 3 seeds.
//! let ours = evaluate(&config, &zoo, &[1, 2, 3], &PolicySpec::Combo(Combo::ours()));
//! let offline = evaluate(&config, &zoo, &[1, 2, 3], &PolicySpec::Offline);
//! println!("Ours: {:.1}, Offline: {:.1}", ours.mean_total_cost, offline.mean_total_cost);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cne_bandit as bandit;
pub use cne_core as core;
pub use cne_edgesim as edgesim;
pub use cne_market as market;
pub use cne_nn as nn;
pub use cne_simdata as simdata;
pub use cne_trading as trading;
pub use cne_util as util;

/// One-stop imports for the common experiment workflow.
pub mod prelude {
    pub use cne_core::combos::{Combo, SelectorKind, TraderKind};
    pub use cne_core::offline::OfflinePolicy;
    pub use cne_core::runner::{evaluate, run_single, EvalResult, PolicySpec};
    pub use cne_edgesim::{Environment, RunRecord, SimConfig};
    pub use cne_nn::{ModelZoo, ZooConfig};
    pub use cne_simdata::dataset::TaskKind;
    pub use cne_util::units::Allowances;
    pub use cne_util::SeedSequence;
}
